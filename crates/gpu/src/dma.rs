//! DMA copy engines.
//!
//! Kepler-class devices have one DMA engine per transfer direction and
//! a single copy queue feeding each. The paper's Figure 1 documents the
//! empirically observed service behaviour: *"control of the copy queue
//! is interleaved between memory transfers from different threads"* —
//! transfers from different streams alternate, so no application's
//! transfer stage completes early and every kernel waits. That policy
//! is modelled here as [`ServiceOrder::StreamInterleaved`]: the engine
//! round-robins across streams with eligible transfers, serving the
//! oldest transfer of each in turn. [`ServiceOrder::IssueOrder`] (pure
//! host-issue FIFO) is available as a counterfactual.
//!
//! The paper's memory-synchronization technique (§III-B) defeats the
//! interleaving from the host side: a mutex held across an
//! application's HtoD stage **until its transfers complete** leaves the
//! engine only one stream with pending work at a time, turning service
//! into the pseudo-burst of Figure 2.
//!
//! With [`DmaConfig::chunk_bytes`] set, every transfer is split into
//! chunks that re-enter the queue after each serviced piece — the
//! "chunking" strategy of Pai et al. [8], which increases interleaving
//! further (each chunk pays the fixed setup latency; applications with
//! small total transfers get ahead sooner).

use crate::config::{DmaConfig, ServiceOrder};
use crate::types::{Dir, OpId, StreamId};
use hq_des::record::Utilization;
use hq_des::time::{Dur, SimTime};

/// A transfer waiting for (or re-queued on) the engine.
#[derive(Debug, Clone, Copy)]
struct PendingCopy {
    seq: u64,
    op: OpId,
    stream: StreamId,
    bytes_left: u64,
}

/// The transfer currently occupying the engine.
#[derive(Debug, Clone, Copy)]
pub struct ActiveCopy {
    /// Which operation is being serviced.
    pub op: OpId,
    /// Stream the operation belongs to.
    pub stream: StreamId,
    /// Bytes moved by this service slice.
    pub chunk: u64,
    /// Bytes that will remain after this slice completes.
    pub bytes_after: u64,
    /// When this slice began.
    pub started: SimTime,
}

/// Result of completing one engine service slice.
#[derive(Debug, Clone, Copy)]
pub struct CopyProgress {
    /// The operation that was serviced.
    pub op: OpId,
    /// Bytes moved in the completed slice.
    pub chunk: u64,
    /// When the slice began (for span recording).
    pub started: SimTime,
    /// True if the whole transfer has now completed.
    pub done: bool,
}

/// One direction's DMA engine.
#[derive(Debug)]
pub struct Engine {
    dir: Dir,
    cfg: DmaConfig,
    pending: Vec<PendingCopy>,
    current: Option<ActiveCopy>,
    /// Last stream served (round-robin cursor).
    last_stream: Option<StreamId>,
    /// Busy/idle recorder (drives the power model's DMA term).
    pub util: Utilization,
}

impl Engine {
    /// New idle engine.
    pub fn new(dir: Dir, cfg: DmaConfig) -> Self {
        Engine {
            dir,
            cfg,
            pending: Vec::new(),
            current: None,
            last_stream: None,
            util: Utilization::new(),
        }
    }

    /// Engine direction.
    pub fn dir(&self) -> Dir {
        self.dir
    }

    /// True if no transfer is in service.
    pub fn is_idle(&self) -> bool {
        self.current.is_none()
    }

    /// Number of transfers waiting (not counting the one in service).
    pub fn queue_len(&self) -> usize {
        self.pending.len()
    }

    /// The transfer currently in service, if any.
    pub fn active(&self) -> Option<&ActiveCopy> {
        self.current.as_ref()
    }

    /// Make a transfer eligible for service.
    pub fn submit(&mut self, seq: u64, op: OpId, stream: StreamId, bytes: u64) {
        debug_assert!(
            !self.pending.iter().any(|p| p.seq == seq),
            "duplicate engine sequence {seq}"
        );
        self.pending.push(PendingCopy {
            seq,
            op,
            stream,
            bytes_left: bytes,
        });
    }

    /// Pick the next transfer according to the service order. Returns an
    /// index into `pending`.
    fn select(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        match self.cfg.service_order {
            ServiceOrder::IssueOrder => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.seq)
                .map(|(i, _)| i),
            ServiceOrder::StreamInterleaved => {
                // Head (oldest) entry per stream, then the cyclically
                // next stream after the last one served.
                let mut heads: Vec<usize> = Vec::new();
                for (i, p) in self.pending.iter().enumerate() {
                    match heads
                        .iter_mut()
                        .find(|&&mut h| self.pending[h].stream == p.stream)
                    {
                        Some(h) => {
                            if p.seq < self.pending[*h].seq {
                                *h = i;
                            }
                        }
                        None => heads.push(i),
                    }
                }
                heads.sort_by_key(|&i| self.pending[i].stream);
                let next = match self.last_stream {
                    Some(last) => heads
                        .iter()
                        .copied()
                        .find(|&i| self.pending[i].stream > last),
                    None => None,
                };
                next.or_else(|| heads.first().copied())
            }
        }
    }

    /// If idle and work is queued, begin the next service slice.
    /// Returns the slice duration for the caller to schedule the
    /// completion event; `None` if the engine stays idle or is busy.
    pub fn try_start(&mut self, now: SimTime) -> Option<Dur> {
        if self.current.is_some() {
            return None;
        }
        let idx = self.select()?;
        let p = self.pending.swap_remove(idx);
        let chunk = match self.cfg.chunk_bytes {
            Some(c) if c > 0 => p.bytes_left.min(c),
            _ => p.bytes_left,
        };
        self.last_stream = Some(p.stream);
        self.current = Some(ActiveCopy {
            op: p.op,
            stream: p.stream,
            chunk,
            bytes_after: p.bytes_left - chunk,
            started: now,
        });
        self.util.busy(now);
        Some(self.cfg.transfer_time(chunk))
    }

    /// Complete the slice in service. If the transfer has bytes left
    /// (chunked mode), it re-enters the queue at a fresh sequence number
    /// drawn from `next_seq`.
    pub fn finish_current(&mut self, now: SimTime, next_seq: &mut u64) -> CopyProgress {
        let active = self.current.take().expect("finish_current on idle engine");
        let done = active.bytes_after == 0;
        if !done {
            let seq = *next_seq;
            *next_seq += 1;
            self.pending.push(PendingCopy {
                seq,
                op: active.op,
                stream: active.stream,
                bytes_left: active.bytes_after,
            });
        }
        if self.pending.is_empty() {
            self.util.idle(now);
        }
        CopyProgress {
            op: active.op,
            chunk: active.chunk,
            started: active.started,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    fn cfg(order: ServiceOrder) -> DmaConfig {
        DmaConfig {
            latency: Dur::from_us(10),
            bytes_per_sec: 1e9, // 1 byte/ns: easy arithmetic
            chunk_bytes: None,
            service_order: order,
        }
    }

    /// Drain the engine, returning (op, done) in service order.
    fn drain(e: &mut Engine, start_seq: u64) -> Vec<(OpId, bool)> {
        let mut seq = start_seq;
        let mut now = 0;
        let mut order = Vec::new();
        while let Some(d) = e.try_start(t(now)) {
            now += d.as_ns();
            let p = e.finish_current(t(now), &mut seq);
            order.push((p.op, p.done));
        }
        order
    }

    #[test]
    fn issue_order_serves_by_seq() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::IssueOrder));
        e.submit(5, OpId(1), StreamId(0), 100);
        e.submit(2, OpId(2), StreamId(1), 100);
        e.submit(9, OpId(3), StreamId(0), 100);
        let order: Vec<OpId> = drain(&mut e, 100).into_iter().map(|(o, _)| o).collect();
        assert_eq!(order, vec![OpId(2), OpId(1), OpId(3)]);
    }

    #[test]
    fn stream_interleaved_alternates_between_streams() {
        // Two streams, each with two consecutive transfers (burst issue
        // order). Interleaved service must alternate: exactly Figure 1.
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::StreamInterleaved));
        e.submit(0, OpId(10), StreamId(0), 100);
        e.submit(1, OpId(11), StreamId(0), 100);
        e.submit(2, OpId(20), StreamId(1), 100);
        e.submit(3, OpId(21), StreamId(1), 100);
        let order: Vec<OpId> = drain(&mut e, 100).into_iter().map(|(o, _)| o).collect();
        assert_eq!(order, vec![OpId(10), OpId(20), OpId(11), OpId(21)]);
    }

    #[test]
    fn stream_interleaved_single_stream_is_sequential() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::StreamInterleaved));
        e.submit(0, OpId(1), StreamId(3), 100);
        e.submit(1, OpId(2), StreamId(3), 100);
        e.submit(2, OpId(3), StreamId(3), 100);
        let order: Vec<OpId> = drain(&mut e, 100).into_iter().map(|(o, _)| o).collect();
        assert_eq!(order, vec![OpId(1), OpId(2), OpId(3)]);
    }

    #[test]
    fn round_robin_cursor_wraps() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::StreamInterleaved));
        for s in 0..3u32 {
            e.submit(s as u64, OpId(s), StreamId(s), 10);
        }
        // Serve stream 0, then a new op on stream 0 arrives; streams 1,2
        // must still get their turns before stream 0 again.
        let mut seq = 10;
        let d = e.try_start(t(0)).unwrap();
        let p = e.finish_current(t(d.as_ns()), &mut seq);
        assert_eq!(p.op, OpId(0));
        e.submit(seq, OpId(100), StreamId(0), 10);
        seq += 1;
        let order: Vec<OpId> = drain(&mut e, seq).into_iter().map(|(o, _)| o).collect();
        assert_eq!(order, vec![OpId(1), OpId(2), OpId(100)]);
    }

    #[test]
    fn busy_engine_does_not_preempt() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::IssueOrder));
        e.submit(1, OpId(1), StreamId(0), 1000);
        assert!(e.try_start(t(0)).is_some());
        e.submit(0, OpId(2), StreamId(1), 10); // earlier seq arrives late
        assert!(e.try_start(t(5)).is_none(), "no preemption");
        let mut seq = 10;
        e.finish_current(t(11_000), &mut seq);
        e.try_start(t(11_000)).unwrap();
        assert_eq!(e.active().unwrap().op, OpId(2));
    }

    #[test]
    fn unchunked_transfer_is_atomic() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::StreamInterleaved));
        e.submit(1, OpId(7), StreamId(0), 1 << 20);
        let d = e.try_start(t(0)).unwrap();
        // 10µs latency + 1MiB at 1B/ns
        assert_eq!(d.as_ns(), 10_000 + (1 << 20));
        let mut seq = 2;
        let p = e.finish_current(t(d.as_ns()), &mut seq);
        assert!(p.done);
        assert_eq!(p.chunk, 1 << 20);
        assert!(e.is_idle() && e.queue_len() == 0);
    }

    #[test]
    fn chunked_transfers_interleave_within_a_stream_pair() {
        let mut c = cfg(ServiceOrder::IssueOrder);
        c.chunk_bytes = Some(512);
        let mut e = Engine::new(Dir::HtoD, c);
        e.submit(1, OpId(1), StreamId(0), 1024); // two chunks
        e.submit(2, OpId(2), StreamId(1), 512); // one chunk
        let order = drain(&mut e, 3);
        // op1 chunk0, op2 (op1's remainder requeued at seq 3), op1 chunk1
        assert_eq!(
            order,
            vec![(OpId(1), false), (OpId(2), true), (OpId(1), true)]
        );
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut e = Engine::new(Dir::DtoH, cfg(ServiceOrder::StreamInterleaved));
        e.submit(1, OpId(1), StreamId(0), 0); // latency-only transfer
        let d = e.try_start(t(0)).unwrap();
        assert_eq!(d.as_ns(), 10_000);
        let mut seq = 2;
        e.finish_current(t(10_000), &mut seq);
        assert_eq!(e.util.busy_time(t(0), t(20_000)).as_ns(), 10_000);
    }

    #[test]
    fn idle_engine_with_empty_queue_stays_idle() {
        let mut e = Engine::new(Dir::HtoD, cfg(ServiceOrder::StreamInterleaved));
        assert!(e.try_start(t(0)).is_none());
        assert!(e.is_idle());
    }
}
