//! CUDA streams.
//!
//! A stream is a FIFO work queue: operation *N+1* may not begin until
//! operation *N* has completed. Cross-stream operations are independent
//! (subject to engine and SMX availability). `cudaStreamSynchronize`
//! blocks the calling host thread until everything enqueued on the
//! stream so far has completed; because in-stream execution is strictly
//! ordered, a completion *count* threshold implements this exactly.

use crate::fault::FaultKind;
use crate::types::{AppId, OpId};
use std::collections::VecDeque;

/// One CUDA stream's device-side state.
#[derive(Debug, Default)]
pub struct Stream {
    /// Ops enqueued and not yet completed, in order. The front op is
    /// the only one eligible to execute ("active").
    queue: VecDeque<OpId>,
    /// Total ops ever enqueued.
    enqueued: u64,
    /// Total ops completed.
    completed: u64,
    /// Host threads blocked in `cudaStreamSynchronize`, with the
    /// completion count each is waiting for.
    waiters: Vec<(AppId, u64)>,
    /// Sticky error, CUDA-style: once an op on this stream faults, every
    /// subsequent op completes immediately with the error instead of
    /// executing. The first fault wins.
    error: Option<FaultKind>,
}

impl Stream {
    /// New empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an op. Returns `true` if the op landed at the front of
    /// the queue (and should be activated immediately).
    pub fn enqueue(&mut self, op: OpId) -> bool {
        self.queue.push_back(op);
        self.enqueued += 1;
        self.queue.len() == 1
    }

    /// Complete the front op (which must be `op`). Returns the next op
    /// to activate, if any.
    pub fn complete_front(&mut self, op: OpId) -> Option<OpId> {
        let front = self.queue.pop_front().expect("completing on empty stream");
        assert_eq!(front, op, "stream completed out of order");
        self.completed += 1;
        self.queue.front().copied()
    }

    /// The op currently eligible to execute.
    pub fn front(&self) -> Option<OpId> {
        self.queue.front().copied()
    }

    /// Number of enqueued-but-incomplete ops.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Total ops ever enqueued (the threshold captured by a sync).
    pub fn enqueued_count(&self) -> u64 {
        self.enqueued
    }

    /// Total ops completed.
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// True if all enqueued work has completed.
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Register a host thread waiting for the current enqueue count to
    /// complete. Returns `false` (no blocking needed) if the stream has
    /// already drained that far.
    pub fn add_sync_waiter(&mut self, app: AppId) -> bool {
        if self.completed >= self.enqueued {
            return false;
        }
        self.waiters.push((app, self.enqueued));
        true
    }

    /// Collect the waiters whose thresholds are now satisfied.
    pub fn take_satisfied_waiters(&mut self) -> Vec<AppId> {
        let completed = self.completed;
        let mut woken = Vec::new();
        self.waiters.retain(|&(app, threshold)| {
            if completed >= threshold {
                woken.push(app);
                false
            } else {
                true
            }
        });
        woken
    }

    /// Number of blocked sync waiters (diagnostics).
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }

    /// Mark the stream with a sticky error (the first fault wins).
    pub fn poison(&mut self, kind: FaultKind) {
        if self.error.is_none() {
            self.error = Some(kind);
        }
    }

    /// The sticky error, if any.
    pub fn error(&self) -> Option<FaultKind> {
        self.error
    }

    /// True once a fault has poisoned the stream.
    pub fn is_poisoned(&self) -> bool {
        self.error.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_enqueue_is_front() {
        let mut s = Stream::new();
        assert!(s.enqueue(OpId(0)));
        assert!(!s.enqueue(OpId(1)));
        assert_eq!(s.front(), Some(OpId(0)));
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn completion_activates_next() {
        let mut s = Stream::new();
        s.enqueue(OpId(0));
        s.enqueue(OpId(1));
        assert_eq!(s.complete_front(OpId(0)), Some(OpId(1)));
        assert_eq!(s.complete_front(OpId(1)), None);
        assert!(s.is_drained());
        assert_eq!(s.completed_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_completion_panics() {
        let mut s = Stream::new();
        s.enqueue(OpId(0));
        s.enqueue(OpId(1));
        s.complete_front(OpId(1));
    }

    #[test]
    fn sync_on_drained_stream_does_not_block() {
        let mut s = Stream::new();
        assert!(!s.add_sync_waiter(AppId(0)));
        s.enqueue(OpId(0));
        s.complete_front(OpId(0));
        assert!(!s.add_sync_waiter(AppId(0)));
    }

    #[test]
    fn sync_waiter_wakes_at_threshold() {
        let mut s = Stream::new();
        s.enqueue(OpId(0));
        s.enqueue(OpId(1));
        assert!(s.add_sync_waiter(AppId(5))); // waits for 2 completions
        s.complete_front(OpId(0));
        assert!(s.take_satisfied_waiters().is_empty());
        s.complete_front(OpId(1));
        assert_eq!(s.take_satisfied_waiters(), vec![AppId(5)]);
        assert_eq!(s.waiter_count(), 0);
    }

    #[test]
    fn sync_ignores_ops_enqueued_after_it() {
        let mut s = Stream::new();
        s.enqueue(OpId(0));
        assert!(s.add_sync_waiter(AppId(1))); // threshold = 1
        s.enqueue(OpId(1)); // enqueued later; sync must not wait on it
        s.complete_front(OpId(0));
        assert_eq!(s.take_satisfied_waiters(), vec![AppId(1)]);
    }

    #[test]
    fn first_poison_is_sticky() {
        let mut s = Stream::new();
        assert!(!s.is_poisoned());
        s.poison(FaultKind::CopyFail);
        s.poison(FaultKind::KernelHang);
        assert_eq!(s.error(), Some(FaultKind::CopyFail), "first fault wins");
        assert!(s.is_poisoned());
    }

    #[test]
    fn multiple_waiters_distinct_thresholds() {
        let mut s = Stream::new();
        s.enqueue(OpId(0));
        s.add_sync_waiter(AppId(1)); // threshold 1
        s.enqueue(OpId(1));
        s.add_sync_waiter(AppId(2)); // threshold 2
        s.complete_front(OpId(0));
        assert_eq!(s.take_satisfied_waiters(), vec![AppId(1)]);
        s.complete_front(OpId(1));
        assert_eq!(s.take_satisfied_waiters(), vec![AppId(2)]);
    }
}
