//! Kernel launch descriptors and per-block resource arithmetic.

use hq_des::intern::{Interner, Symbol};
use hq_des::time::Dur;
use serde::{Deserialize, Serialize};

/// A CUDA-style 3-component launch dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// X extent (≥ 1).
    pub x: u32,
    /// Y extent (≥ 1).
    pub y: u32,
    /// Z extent (≥ 1).
    pub z: u32,
}

impl Dim3 {
    /// 1-D dimension `(x, 1, 1)`.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// 2-D dimension `(x, y, 1)`.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements (`x·y·z`).
    pub const fn count(&self) -> u32 {
        self.x * self.y * self.z
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

/// Static description of one kernel launch: geometry, per-block resource
/// requirements, and the cost model input (`work_per_block`).
///
/// `work_per_block` is the time one thread block takes when its warps
/// progress at full issue rate; the SMX processor-sharing model
/// stretches it when resident warps exceed the SMX issue capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name (as it would appear in a profiler timeline).
    pub name: String,
    /// Grid dimensions (number of thread blocks per axis).
    pub grid: Dim3,
    /// Block dimensions (threads per axis).
    pub block: Dim3,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub smem_per_block: u32,
    /// Nominal single-block execution time at full issue rate.
    pub work_per_block: Dur,
}

impl KernelDesc {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        work_per_block: Dur,
    ) -> Self {
        KernelDesc {
            name: name.into(),
            grid: grid.into(),
            block: block.into(),
            regs_per_thread: 32,
            smem_per_block: 0,
            work_per_block,
        }
    }

    /// Builder-style register requirement.
    pub fn with_regs(mut self, regs_per_thread: u32) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    /// Builder-style shared-memory requirement.
    pub fn with_smem(mut self, smem_per_block: u32) -> Self {
        self.smem_per_block = smem_per_block;
        self
    }

    /// Total thread blocks in the grid (`#TB` in the paper's Table III).
    pub fn blocks(&self) -> u32 {
        self.grid.count()
    }

    /// Threads per block (`#TPB` in the paper's Table III).
    pub fn threads_per_block(&self) -> u32 {
        self.block.count()
    }

    /// Warps per block (threads rounded up to warp granularity).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Registers required by one block.
    pub fn regs_per_block(&self) -> u32 {
        // The register file allocates per warp at warp granularity; the
        // per-thread count times 32 threads per warp is the standard
        // approximation.
        self.warps_per_block() * 32 * self.regs_per_thread
    }

    /// Total threads across the whole grid.
    pub fn total_threads(&self) -> u64 {
        self.blocks() as u64 * self.threads_per_block() as u64
    }

    /// Compile into the `Copy` form used inside the simulator, interning
    /// the kernel name into `table`.
    pub fn compile(&self, table: &mut Interner) -> KernelInfo {
        KernelInfo {
            name: table.intern(&self.name),
            grid: self.grid,
            block: self.block,
            regs_per_thread: self.regs_per_thread,
            smem_per_block: self.smem_per_block,
            work_per_block: self.work_per_block,
        }
    }
}

/// The compiled, `Copy` form of [`KernelDesc`] used on the simulator's
/// hot path: identical geometry and resource fields, but the kernel name
/// is a [`Symbol`] into the per-simulation [`Interner`], so activating,
/// dispatching and retiring a grid moves no heap memory. Resolve the
/// name back to a string only at the result boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelInfo {
    /// Interned kernel name.
    pub name: Symbol,
    /// Grid dimensions (number of thread blocks per axis).
    pub grid: Dim3,
    /// Block dimensions (threads per axis).
    pub block: Dim3,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub smem_per_block: u32,
    /// Nominal single-block execution time at full issue rate.
    pub work_per_block: Dur,
}

impl KernelInfo {
    /// Builder-style register requirement.
    pub fn with_regs(mut self, regs_per_thread: u32) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    /// Builder-style shared-memory requirement.
    pub fn with_smem(mut self, smem_per_block: u32) -> Self {
        self.smem_per_block = smem_per_block;
        self
    }

    /// Total thread blocks in the grid.
    pub fn blocks(&self) -> u32 {
        self.grid.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count()
    }

    /// Warps per block (threads rounded up to warp granularity).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Registers required by one block (warp-granular, as in
    /// [`KernelDesc::regs_per_block`]).
    pub fn regs_per_block(&self) -> u32 {
        self.warps_per_block() * 32 * self.regs_per_thread
    }

    /// Total threads across the whole grid.
    pub fn total_threads(&self) -> u64 {
        self.blocks() as u64 * self.threads_per_block() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_constructors() {
        assert_eq!(Dim3::x(5).count(), 5);
        assert_eq!(Dim3::xy(32, 32).count(), 1024);
        assert_eq!(Dim3 { x: 2, y: 3, z: 4 }.count(), 24);
        let d: Dim3 = 7u32.into();
        assert_eq!(d, Dim3::x(7));
        let d: Dim3 = (16, 16).into();
        assert_eq!(d.count(), 256);
    }

    #[test]
    fn table3_fan2_geometry() {
        // gaussian Fan2: grid (32,32,1), block (16,16,1) → 1024 TB, 256 TPB.
        let k = KernelDesc::new("Fan2", (32, 32), (16, 16), Dur::from_us(3));
        assert_eq!(k.blocks(), 1024);
        assert_eq!(k.threads_per_block(), 256);
        assert_eq!(k.warps_per_block(), 8);
    }

    #[test]
    fn table3_needle_geometry() {
        // needle_cuda_shared_1: grid (16,1,1), block (32,1,1) → 16 TB, 32 TPB.
        let k = KernelDesc::new("needle_cuda_shared_1", 16u32, 32u32, Dur::from_us(5));
        assert_eq!(k.blocks(), 16);
        assert_eq!(k.threads_per_block(), 32);
        assert_eq!(k.warps_per_block(), 1);
    }

    #[test]
    fn warps_round_up() {
        let k = KernelDesc::new("odd", 1u32, 33u32, Dur::from_us(1));
        assert_eq!(k.warps_per_block(), 2);
        let k = KernelDesc::new("one", 1u32, 1u32, Dur::from_us(1));
        assert_eq!(k.warps_per_block(), 1);
    }

    #[test]
    fn regs_per_block_warp_granular() {
        let k = KernelDesc::new("k", 1u32, 33u32, Dur::from_us(1)).with_regs(40);
        // 2 warps × 32 threads × 40 regs
        assert_eq!(k.regs_per_block(), 2 * 32 * 40);
    }

    #[test]
    fn compile_preserves_geometry_and_interns_name() {
        let mut table = Interner::new();
        let k = KernelDesc::new("Fan2", (32, 32), (16, 16), Dur::from_us(3)).with_regs(20);
        let i = k.compile(&mut table);
        assert_eq!(table.resolve(i.name), "Fan2");
        assert_eq!(i.blocks(), k.blocks());
        assert_eq!(i.threads_per_block(), k.threads_per_block());
        assert_eq!(i.warps_per_block(), k.warps_per_block());
        assert_eq!(i.regs_per_block(), k.regs_per_block());
        assert_eq!(i.total_threads(), k.total_threads());
        // Compiling the same kernel twice reuses the symbol.
        assert_eq!(k.compile(&mut table).name, i.name);
    }

    #[test]
    fn builders_set_fields() {
        let k = KernelDesc::new("k", 1u32, 64u32, Dur::from_us(1))
            .with_regs(48)
            .with_smem(4096);
        assert_eq!(k.regs_per_thread, 48);
        assert_eq!(k.smem_per_block, 4096);
        assert_eq!(k.total_threads(), 64);
    }
}
