//! Host-side application programs.
//!
//! An *application* in the paper is a CPU thread executing a fixed
//! pattern of CUDA runtime calls against one stream — in general
//! `HtoD transfers → kernel iterations → DtoH transfers`. [`Program`] is
//! that pattern as data: a sequence of [`HostOp`]s executed by a
//! simulated host thread, each call paying the configured driver
//! overhead before its operation is enqueued.

use crate::kernel::{KernelDesc, KernelInfo};
use crate::types::{Dir, MutexId};
use hq_des::intern::{Interner, Symbol};
use hq_des::time::Dur;
use serde::{Deserialize, Serialize};

/// One host-side operation (one CUDA runtime call or host action).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum HostOp {
    /// `cudaMemcpyAsync` on the application's stream.
    MemcpyAsync {
        /// Transfer direction.
        dir: Dir,
        /// Transfer size in bytes.
        bytes: u64,
        /// Label for traces (e.g. the buffer name).
        label: String,
    },
    /// Kernel launch on the application's stream.
    LaunchKernel {
        /// Full launch descriptor.
        kernel: KernelDesc,
    },
    /// `cudaStreamSynchronize`: block the host thread until every
    /// operation previously enqueued on the stream has completed.
    StreamSync,
    /// Pure host-side computation (no device interaction).
    HostWork {
        /// How long the host stays busy.
        dur: Dur,
    },
    /// Acquire a host mutex (blocking; FIFO wakeup). Used by the
    /// memory-transfer synchronization technique (paper §III-B).
    MutexLock(MutexId),
    /// Release a host mutex.
    MutexUnlock(MutexId),
}

/// A complete application program plus bookkeeping metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Application label (e.g. `gaussian#3`).
    pub label: String,
    /// Ops executed in order by the host thread.
    pub ops: Vec<HostOp>,
    /// Device memory this application allocates before the timed
    /// region (checked against device capacity at simulation start).
    pub device_bytes: u64,
}

impl Program {
    /// Start building a program.
    pub fn builder(label: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            program: Program {
                label: label.into(),
                ops: Vec::new(),
                device_bytes: 0,
            },
        }
    }

    /// Number of kernel launches in the program.
    pub fn kernel_launches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, HostOp::LaunchKernel { .. }))
            .count()
    }

    /// Total bytes transferred in the given direction.
    pub fn transfer_bytes(&self, dir: Dir) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                HostOp::MemcpyAsync { dir: d, bytes, .. } if *d == dir => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Number of individual transfers in the given direction.
    pub fn transfer_count(&self, dir: Dir) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, HostOp::MemcpyAsync { dir: d, .. } if *d == dir))
            .count()
    }

    /// Wrap the leading HtoD transfer stage in `lock(mutex) … unlock`,
    /// implementing the paper's memory-transfer synchronization
    /// (§III-B): all of an application's HtoD transfers complete as a
    /// pseudo-burst before another application takes the copy queue.
    ///
    /// `sync_before_unlock` inserts a `StreamSync` before the unlock so
    /// the mutex is held until the transfers have *completed* (not just
    /// been enqueued), exactly as the paper describes.
    ///
    /// Programs whose first operation is not an HtoD transfer are
    /// returned unchanged.
    pub fn with_htod_mutex(mut self, mutex: MutexId, sync_before_unlock: bool) -> Program {
        let stage_end = self
            .ops
            .iter()
            .position(|op| !matches!(op, HostOp::MemcpyAsync { dir: Dir::HtoD, .. }))
            .unwrap_or(self.ops.len());
        if stage_end == 0 {
            return self;
        }
        let mut ops = Vec::with_capacity(self.ops.len() + 3);
        ops.push(HostOp::MutexLock(mutex));
        ops.extend(self.ops.drain(..stage_end));
        if sync_before_unlock {
            ops.push(HostOp::StreamSync);
        }
        ops.push(HostOp::MutexUnlock(mutex));
        ops.append(&mut self.ops);
        self.ops = ops;
        self
    }
}

/// One compiled host op: the `Copy` form of [`HostOp`] executed by the
/// simulator's host-step loop. Trace labels are pre-interned (including
/// the `"{label} {dir}"` suffix copies carry in the timeline), so
/// stepping a program clones nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum COp {
    /// `cudaMemcpyAsync`; `label` is the full interned trace label.
    Memcpy {
        /// Transfer direction.
        dir: Dir,
        /// Transfer size in bytes.
        bytes: u64,
        /// Interned trace label (`"{buffer} {dir}"`).
        label: Symbol,
    },
    /// Kernel launch with a compiled descriptor.
    Launch(KernelInfo),
    /// `cudaStreamSynchronize`.
    Sync,
    /// Pure host-side computation.
    HostWork(Dur),
    /// Acquire a host mutex.
    Lock(MutexId),
    /// Release a host mutex.
    Unlock(MutexId),
}

/// A [`Program`] compiled against a per-simulation [`Interner`]: every
/// label is a [`Symbol`] and every op is `Copy`.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Interned application label.
    pub label: Symbol,
    /// Compiled ops, in program order.
    pub ops: Vec<COp>,
    /// Device memory footprint (see [`Program::device_bytes`]).
    pub device_bytes: u64,
}

impl Program {
    /// Compile this program for execution, interning all labels into
    /// `table`. The simulator calls this once per added application.
    pub fn compile(&self, table: &mut Interner) -> CompiledProgram {
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                HostOp::MemcpyAsync { dir, bytes, label } => COp::Memcpy {
                    dir: *dir,
                    bytes: *bytes,
                    label: table.intern(&format!("{label} {dir}")),
                },
                HostOp::LaunchKernel { kernel } => COp::Launch(kernel.compile(table)),
                HostOp::StreamSync => COp::Sync,
                HostOp::HostWork { dur } => COp::HostWork(*dur),
                HostOp::MutexLock(m) => COp::Lock(*m),
                HostOp::MutexUnlock(m) => COp::Unlock(*m),
            })
            .collect();
        CompiledProgram {
            label: table.intern(&self.label),
            ops,
            device_bytes: self.device_bytes,
        }
    }
}

/// Fluent builder for [`Program`].
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Add a host-to-device transfer.
    pub fn htod(mut self, bytes: u64, label: impl Into<String>) -> Self {
        self.program.ops.push(HostOp::MemcpyAsync {
            dir: Dir::HtoD,
            bytes,
            label: label.into(),
        });
        self
    }

    /// Add a device-to-host transfer.
    pub fn dtoh(mut self, bytes: u64, label: impl Into<String>) -> Self {
        self.program.ops.push(HostOp::MemcpyAsync {
            dir: Dir::DtoH,
            bytes,
            label: label.into(),
        });
        self
    }

    /// Add a kernel launch.
    pub fn launch(mut self, kernel: KernelDesc) -> Self {
        self.program.ops.push(HostOp::LaunchKernel { kernel });
        self
    }

    /// Add a stream synchronize.
    pub fn sync(mut self) -> Self {
        self.program.ops.push(HostOp::StreamSync);
        self
    }

    /// Add host-side work.
    pub fn host_work(mut self, dur: Dur) -> Self {
        self.program.ops.push(HostOp::HostWork { dur });
        self
    }

    /// Record device memory footprint (informational; checked against
    /// device capacity when the simulation starts).
    pub fn device_alloc(mut self, bytes: u64) -> Self {
        self.program.device_bytes += bytes;
        self
    }

    /// Finish with a trailing `StreamSync` so the host thread's
    /// completion time includes all of its device work — every
    /// application in the paper's harness joins its thread only after
    /// its stream drains.
    pub fn build(mut self) -> Program {
        if !matches!(self.program.ops.last(), Some(HostOp::StreamSync)) {
            self.program.ops.push(HostOp::StreamSync);
        }
        self.program
    }

    /// Finish without appending a trailing sync (tests / special cases).
    pub fn build_unsynced(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(name: &str) -> KernelDesc {
        KernelDesc::new(name, 4u32, 64u32, Dur::from_us(10))
    }

    #[test]
    fn builder_appends_trailing_sync() {
        let p = Program::builder("a")
            .htod(1024, "x")
            .launch(k("k1"))
            .dtoh(1024, "y")
            .build();
        assert_eq!(p.ops.len(), 4);
        assert!(matches!(p.ops.last(), Some(HostOp::StreamSync)));
        let p2 = Program::builder("b").sync().build();
        assert_eq!(p2.ops.len(), 1, "no duplicate trailing sync");
    }

    #[test]
    fn counters() {
        let p = Program::builder("a")
            .htod(1000, "x")
            .htod(500, "y")
            .launch(k("k1"))
            .launch(k("k2"))
            .dtoh(300, "z")
            .build();
        assert_eq!(p.kernel_launches(), 2);
        assert_eq!(p.transfer_bytes(Dir::HtoD), 1500);
        assert_eq!(p.transfer_bytes(Dir::DtoH), 300);
        assert_eq!(p.transfer_count(Dir::HtoD), 2);
        assert_eq!(p.transfer_count(Dir::DtoH), 1);
    }

    #[test]
    fn htod_mutex_wraps_leading_stage() {
        let m = MutexId(0);
        let p = Program::builder("a")
            .htod(1000, "x")
            .htod(500, "y")
            .launch(k("k1"))
            .dtoh(300, "z")
            .build()
            .with_htod_mutex(m, true);
        // lock, htod, htod, sync, unlock, launch, dtoh, sync
        assert!(matches!(p.ops[0], HostOp::MutexLock(id) if id == m));
        assert!(matches!(
            p.ops[1],
            HostOp::MemcpyAsync { dir: Dir::HtoD, .. }
        ));
        assert!(matches!(
            p.ops[2],
            HostOp::MemcpyAsync { dir: Dir::HtoD, .. }
        ));
        assert!(matches!(p.ops[3], HostOp::StreamSync));
        assert!(matches!(p.ops[4], HostOp::MutexUnlock(id) if id == m));
        assert!(matches!(p.ops[5], HostOp::LaunchKernel { .. }));
    }

    #[test]
    fn htod_mutex_without_sync() {
        let p = Program::builder("a")
            .htod(1000, "x")
            .launch(k("k1"))
            .build()
            .with_htod_mutex(MutexId(1), false);
        assert!(matches!(p.ops[0], HostOp::MutexLock(_)));
        assert!(matches!(p.ops[2], HostOp::MutexUnlock(_)));
    }

    #[test]
    fn htod_mutex_noop_when_no_leading_stage() {
        let p = Program::builder("a")
            .launch(k("k1"))
            .htod(1000, "late")
            .build();
        let before = p.clone();
        let after = p.with_htod_mutex(MutexId(0), true);
        assert_eq!(before, after);
    }

    #[test]
    fn compile_interns_labels_and_preserves_structure() {
        let mut table = Interner::new();
        let p = Program::builder("gaussian#0")
            .htod(1024, "a")
            .launch(k("Fan1"))
            .dtoh(512, "m")
            .build()
            .compile(&mut table);
        assert_eq!(table.resolve(p.label), "gaussian#0");
        assert_eq!(p.ops.len(), 4);
        match p.ops[0] {
            COp::Memcpy { dir, bytes, label } => {
                assert_eq!(dir, Dir::HtoD);
                assert_eq!(bytes, 1024);
                // The trace-ready label includes the direction suffix.
                assert_eq!(table.resolve(label), "a HtoD");
            }
            ref other => panic!("expected Memcpy, got {other:?}"),
        }
        match p.ops[1] {
            COp::Launch(info) => assert_eq!(table.resolve(info.name), "Fan1"),
            ref other => panic!("expected Launch, got {other:?}"),
        }
        assert_eq!(p.ops[3], COp::Sync);
    }

    #[test]
    fn device_alloc_accumulates() {
        let p = Program::builder("a")
            .device_alloc(1024)
            .device_alloc(2048)
            .build();
        assert_eq!(p.device_bytes, 3072);
    }
}
