//! Simulation outputs: per-application statistics and device series.

use crate::config::DeviceConfig;
use crate::fault::FaultKind;
use crate::types::{AppId, Dir, StreamId};
use hq_des::record::TimeSeries;
use hq_des::time::{Dur, SimTime};
use hq_des::trace::TraceLog;
use serde::{Deserialize, Serialize};

/// Aggregated statistics for one transfer direction of one application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferStats {
    /// Number of memcpy operations.
    pub count: u32,
    /// Total bytes moved.
    pub bytes: u64,
    /// Engine start of the first transfer.
    pub first_start: Option<SimTime>,
    /// Engine completion of the last transfer.
    pub last_end: Option<SimTime>,
    /// Sum of pure engine service time for this app's transfers.
    pub service_time: Dur,
}

impl TransferStats {
    /// The paper's *effective memory transfer latency* `Le` (§III-B,
    /// eq. 2): wall time from the start of the application's first
    /// transfer to the completion of its last, in this direction —
    /// inflated when other applications' transfers interleave.
    pub fn effective_latency(&self) -> Option<Dur> {
        match (self.first_start, self.last_end) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    pub(crate) fn note_service(&mut self, start: SimTime, end: SimTime) {
        self.first_start = Some(self.first_start.map_or(start, |f| f.min(start)));
        self.last_end = Some(self.last_end.map_or(end, |l| l.max(end)));
        self.service_time += end - start;
    }

    fn shift(&mut self, offset: Dur) {
        self.first_start = self.first_start.map(|t| t + offset);
        self.last_end = self.last_end.map(|t| t + offset);
    }
}

/// Terminal status of one application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum AppOutcome {
    /// Every device operation completed normally.
    #[default]
    Completed,
    /// A fault struck (injected or watchdog-detected); the remaining
    /// stream operations completed with a sticky error.
    Failed {
        /// The first fault that poisoned the application's stream.
        reason: FaultKind,
    },
    /// The harness re-ran the application after a failure and the retry
    /// completed. `attempts` counts every run, including the first.
    Retried {
        /// Total runs of this application.
        attempts: u32,
    },
}

impl AppOutcome {
    /// True when the application ended in failure.
    pub fn is_failed(&self) -> bool {
        matches!(self, AppOutcome::Failed { .. })
    }
}

/// Run-wide reliability counters (all zero for fault-free runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Injected DMA copy failures.
    pub copy_faults: u32,
    /// Injected kernel aborts that fired.
    pub kernel_faults: u32,
    /// Grids killed by the watchdog (hangs and starvation kills).
    pub watchdog_kills: u32,
    /// Watchdog checks that observed progress and re-armed.
    pub watchdog_rearms: u32,
    /// Ops completed-with-error through sticky stream poisoning.
    pub ops_errored: u64,
    /// Mutexes force-released because their holder's thread terminated
    /// while still holding them.
    pub forced_mutex_releases: u32,
    /// Threads still resident on SMXs after the event queue drained
    /// (must be zero; checked by [`crate::validate`]).
    pub leaked_residency: u64,
    /// Mutexes still held after the event queue drained (must be zero).
    pub held_mutexes: u32,
}

impl FaultCounters {
    /// Total faults that actually fired during the run.
    pub fn injected(&self) -> u32 {
        self.copy_faults + self.kernel_faults + self.watchdog_kills
    }

    /// Accumulate another run's counters (used when the harness merges
    /// retry or degraded epochs into one outcome).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.copy_faults += other.copy_faults;
        self.kernel_faults += other.kernel_faults;
        self.watchdog_kills += other.watchdog_kills;
        self.watchdog_rearms += other.watchdog_rearms;
        self.ops_errored += other.ops_errored;
        self.forced_mutex_releases += other.forced_mutex_releases;
        self.leaked_residency += other.leaked_residency;
        self.held_mutexes += other.held_mutexes;
    }
}

/// Per-application results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppStats {
    /// Application id (host thread).
    pub app: AppId,
    /// Application label.
    pub label: String,
    /// Stream the application ran on.
    pub stream: StreamId,
    /// When the host thread started executing.
    pub started: Option<SimTime>,
    /// When the host thread finished its program (after final sync).
    pub finished: Option<SimTime>,
    /// HtoD transfer aggregates.
    pub htod: TransferStats,
    /// DtoH transfer aggregates.
    pub dtoh: TransferStats,
    /// Number of completed kernel launches.
    pub kernels_completed: u32,
    /// First kernel dispatch time.
    pub first_kernel_start: Option<SimTime>,
    /// Last kernel completion time.
    pub last_kernel_end: Option<SimTime>,
    /// Terminal status ([`AppOutcome::Completed`] unless a fault struck;
    /// the harness upgrades recovered apps to [`AppOutcome::Retried`]).
    pub outcome: AppOutcome,
    /// Faults injected into this application's operations.
    pub faults: u32,
}

impl AppStats {
    pub(crate) fn new(app: AppId, label: String, stream: StreamId) -> Self {
        AppStats {
            app,
            label,
            stream,
            started: None,
            finished: None,
            htod: TransferStats::default(),
            dtoh: TransferStats::default(),
            kernels_completed: 0,
            first_kernel_start: None,
            last_kernel_end: None,
            outcome: AppOutcome::Completed,
            faults: 0,
        }
    }

    /// Shift every timestamp by `offset`. The harness uses this to place
    /// a retry epoch's statistics after the primary run on one clock.
    pub fn shift(&mut self, offset: Dur) {
        self.started = self.started.map(|t| t + offset);
        self.finished = self.finished.map(|t| t + offset);
        self.htod.shift(offset);
        self.dtoh.shift(offset);
        self.first_kernel_start = self.first_kernel_start.map(|t| t + offset);
        self.last_kernel_end = self.last_kernel_end.map(|t| t + offset);
    }

    /// Transfer stats for a direction.
    pub fn transfers(&self, dir: Dir) -> &TransferStats {
        match dir {
            Dir::HtoD => &self.htod,
            Dir::DtoH => &self.dtoh,
        }
    }

    pub(crate) fn transfers_mut(&mut self, dir: Dir) -> &mut TransferStats {
        match dir {
            Dir::HtoD => &mut self.htod,
            Dir::DtoH => &mut self.dtoh,
        }
    }

    /// Wall time from thread start to thread finish.
    pub fn turnaround(&self) -> Option<Dur> {
        match (self.started, self.finished) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }
}

/// Errors a simulation run can report instead of panicking.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// Sum of application device allocations exceeds device memory.
    DeviceMemoryExceeded {
        /// Label of the application whose allocation failed.
        app: String,
        /// Bytes that application requested.
        app_requested: u64,
        /// Bytes requested across all applications.
        requested: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// The event queue drained while host threads were still blocked —
    /// e.g. a program locks a mutex and never unlocks it.
    Deadlock {
        /// Labels and states of the stuck threads.
        stuck: Vec<String>,
    },
    /// The online invariant auditor ([`crate::audit::Auditor`]) observed
    /// a conservation-invariant violation and aborted the run.
    AuditFailure {
        /// Rendered violations (`[time] entity: message`), in order.
        violations: Vec<String>,
        /// The most recent simulator transitions leading up to the
        /// first violation, oldest first.
        context: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DeviceMemoryExceeded {
                app,
                app_requested,
                requested,
                capacity,
            } => write!(
                f,
                "device memory exceeded: allocation of {app_requested} B for '{app}' failed \
                 (total requested {requested} B of {capacity} B)"
            ),
            SimError::Deadlock { stuck } => {
                write!(f, "simulation deadlocked; stuck threads: {stuck:?}")
            }
            SimError::AuditFailure { violations, context } => {
                write!(
                    f,
                    "invariant audit failed with {} violation(s)",
                    violations.len()
                )?;
                for v in violations {
                    write!(f, "\n  violation: {v}")?;
                }
                if !context.is_empty() {
                    write!(f, "\n  recent transitions:")?;
                    for line in context {
                        write!(f, "\n    {line}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Host-side throughput counters for one run: how fast the simulator
/// itself chewed through its event loop. Wall-clock fields are
/// *nondeterministic* (they measure the host machine, not the simulated
/// device) and must never feed back into simulated results.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SimPerf {
    /// Discrete events delivered by the future-event list.
    pub events: u64,
    /// Wall-clock seconds spent inside the event loop.
    pub wall_secs: f64,
    /// `events / wall_secs` (0 when the wall time is unmeasurably small).
    pub events_per_sec: f64,
    /// Peak number of pending events in the future-event list.
    pub peak_pending: usize,
    /// Events cancelled while still pending (in-heap tombstones).
    pub cancelled: u64,
    /// Cancellations that targeted already-delivered events (no-ops).
    pub stale_cancels: u64,
    /// Fraction of scheduled events that were cancelled.
    pub tombstone_ratio: f64,
}

/// Complete output of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Device configuration the run used.
    pub device: DeviceConfig,
    /// Wall-clock end of the run (last host thread finish).
    pub makespan: SimTime,
    /// Per-application statistics, in application-id order.
    pub apps: Vec<AppStats>,
    /// Timeline spans (empty if tracing was disabled).
    pub trace: TraceLog,
    /// Device-wide resident thread count over time (drives the power
    /// model's occupancy term).
    pub resident_threads: TimeSeries,
    /// Number of non-idle SMX units over time.
    pub active_smx: TimeSeries,
    /// DMA busy indicator (0/1) per direction over time.
    pub dma_busy: [TimeSeries; 2],
    /// Number of discrete events processed (perf diagnostics).
    pub events: u64,
    /// Event-loop throughput counters (host wall clock; nondeterministic).
    pub perf: SimPerf,
    /// Reliability counters (all zero for fault-free runs).
    pub faults: FaultCounters,
}

impl SimResult {
    /// Mean effective memory transfer latency across applications for a
    /// direction (the per-stream/per-application average of eq. 2).
    pub fn mean_effective_latency(&self, dir: Dir) -> Option<Dur> {
        let vals: Vec<Dur> = self
            .apps
            .iter()
            .filter_map(|a| a.transfers(dir).effective_latency())
            .collect();
        if vals.is_empty() {
            return None;
        }
        let total: u64 = vals.iter().map(|d| d.as_ns()).sum();
        Some(Dur::from_ns(total / vals.len() as u64))
    }

    /// Device occupancy (resident threads / capacity) averaged over the
    /// run.
    pub fn mean_occupancy(&self) -> f64 {
        let cap = self.device.max_resident_threads() as f64;
        if cap == 0.0 || self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.resident_threads
            .mean_over(SimTime::ZERO, self.makespan)
            / cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_latency_requires_both_ends() {
        let mut ts = TransferStats::default();
        assert_eq!(ts.effective_latency(), None);
        ts.note_service(SimTime::from_ns(100), SimTime::from_ns(150));
        ts.note_service(SimTime::from_ns(300), SimTime::from_ns(400));
        assert_eq!(ts.effective_latency(), Some(Dur::from_ns(300)));
        assert_eq!(ts.service_time, Dur::from_ns(150));
    }

    #[test]
    fn note_service_keeps_extremes() {
        let mut ts = TransferStats::default();
        ts.note_service(SimTime::from_ns(200), SimTime::from_ns(250));
        ts.note_service(SimTime::from_ns(50), SimTime::from_ns(80));
        assert_eq!(ts.first_start, Some(SimTime::from_ns(50)));
        assert_eq!(ts.last_end, Some(SimTime::from_ns(250)));
    }

    #[test]
    fn turnaround() {
        let mut a = AppStats::new(AppId(0), "x".into(), StreamId(0));
        assert_eq!(a.turnaround(), None);
        a.started = Some(SimTime::from_ns(10));
        a.finished = Some(SimTime::from_ns(110));
        assert_eq!(a.turnaround(), Some(Dur::from_ns(100)));
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::DeviceMemoryExceeded {
            app: "hog#0".into(),
            app_requested: 7,
            requested: 10,
            capacity: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("device memory exceeded"));
        assert!(msg.contains("hog#0"), "names the failing app: {msg}");
        assert!(msg.contains('7'), "names the failing request: {msg}");
        let d = SimError::Deadlock {
            stuck: vec!["a".into()],
        };
        assert!(d.to_string().contains("deadlock"));
    }

    #[test]
    fn app_stats_shift_moves_every_timestamp() {
        let mut a = AppStats::new(AppId(0), "x".into(), StreamId(0));
        a.started = Some(SimTime::from_ns(10));
        a.finished = Some(SimTime::from_ns(110));
        a.htod.note_service(SimTime::from_ns(20), SimTime::from_ns(30));
        a.first_kernel_start = Some(SimTime::from_ns(40));
        a.last_kernel_end = Some(SimTime::from_ns(90));
        a.shift(Dur::from_ns(1000));
        assert_eq!(a.started, Some(SimTime::from_ns(1010)));
        assert_eq!(a.finished, Some(SimTime::from_ns(1110)));
        assert_eq!(a.htod.first_start, Some(SimTime::from_ns(1020)));
        assert_eq!(a.htod.last_end, Some(SimTime::from_ns(1030)));
        assert_eq!(a.first_kernel_start, Some(SimTime::from_ns(1040)));
        assert_eq!(a.last_kernel_end, Some(SimTime::from_ns(1090)));
        assert_eq!(a.turnaround(), Some(Dur::from_ns(100)), "durations keep");
        assert_eq!(
            a.htod.service_time,
            Dur::from_ns(10),
            "service time is a duration, not shifted"
        );
    }

    #[test]
    fn fault_counters_absorb_and_injected() {
        let mut a = FaultCounters {
            copy_faults: 1,
            ops_errored: 3,
            ..FaultCounters::default()
        };
        let b = FaultCounters {
            kernel_faults: 2,
            watchdog_kills: 1,
            ops_errored: 4,
            ..FaultCounters::default()
        };
        a.absorb(&b);
        assert_eq!(a.injected(), 4);
        assert_eq!(a.ops_errored, 7);
        assert!(AppOutcome::Failed {
            reason: FaultKind::CopyFail
        }
        .is_failed());
        assert!(!AppOutcome::Retried { attempts: 2 }.is_failed());
        assert_eq!(AppOutcome::default(), AppOutcome::Completed);
    }
}
