//! Simulation outputs: per-application statistics and device series.

use crate::config::DeviceConfig;
use crate::types::{AppId, Dir, StreamId};
use hq_des::record::TimeSeries;
use hq_des::time::{Dur, SimTime};
use hq_des::trace::TraceLog;
use serde::{Deserialize, Serialize};

/// Aggregated statistics for one transfer direction of one application.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferStats {
    /// Number of memcpy operations.
    pub count: u32,
    /// Total bytes moved.
    pub bytes: u64,
    /// Engine start of the first transfer.
    pub first_start: Option<SimTime>,
    /// Engine completion of the last transfer.
    pub last_end: Option<SimTime>,
    /// Sum of pure engine service time for this app's transfers.
    pub service_time: Dur,
}

impl TransferStats {
    /// The paper's *effective memory transfer latency* `Le` (§III-B,
    /// eq. 2): wall time from the start of the application's first
    /// transfer to the completion of its last, in this direction —
    /// inflated when other applications' transfers interleave.
    pub fn effective_latency(&self) -> Option<Dur> {
        match (self.first_start, self.last_end) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    pub(crate) fn note_service(&mut self, start: SimTime, end: SimTime) {
        self.first_start = Some(self.first_start.map_or(start, |f| f.min(start)));
        self.last_end = Some(self.last_end.map_or(end, |l| l.max(end)));
        self.service_time += end - start;
    }
}

/// Per-application results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppStats {
    /// Application id (host thread).
    pub app: AppId,
    /// Application label.
    pub label: String,
    /// Stream the application ran on.
    pub stream: StreamId,
    /// When the host thread started executing.
    pub started: Option<SimTime>,
    /// When the host thread finished its program (after final sync).
    pub finished: Option<SimTime>,
    /// HtoD transfer aggregates.
    pub htod: TransferStats,
    /// DtoH transfer aggregates.
    pub dtoh: TransferStats,
    /// Number of completed kernel launches.
    pub kernels_completed: u32,
    /// First kernel dispatch time.
    pub first_kernel_start: Option<SimTime>,
    /// Last kernel completion time.
    pub last_kernel_end: Option<SimTime>,
}

impl AppStats {
    pub(crate) fn new(app: AppId, label: String, stream: StreamId) -> Self {
        AppStats {
            app,
            label,
            stream,
            started: None,
            finished: None,
            htod: TransferStats::default(),
            dtoh: TransferStats::default(),
            kernels_completed: 0,
            first_kernel_start: None,
            last_kernel_end: None,
        }
    }

    /// Transfer stats for a direction.
    pub fn transfers(&self, dir: Dir) -> &TransferStats {
        match dir {
            Dir::HtoD => &self.htod,
            Dir::DtoH => &self.dtoh,
        }
    }

    pub(crate) fn transfers_mut(&mut self, dir: Dir) -> &mut TransferStats {
        match dir {
            Dir::HtoD => &mut self.htod,
            Dir::DtoH => &mut self.dtoh,
        }
    }

    /// Wall time from thread start to thread finish.
    pub fn turnaround(&self) -> Option<Dur> {
        match (self.started, self.finished) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }
}

/// Errors a simulation run can report instead of panicking.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// Sum of application device allocations exceeds device memory.
    DeviceMemoryExceeded {
        /// Bytes requested across all applications.
        requested: u64,
        /// Device capacity.
        capacity: u64,
    },
    /// The event queue drained while host threads were still blocked —
    /// e.g. a program locks a mutex and never unlocks it.
    Deadlock {
        /// Labels and states of the stuck threads.
        stuck: Vec<String>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DeviceMemoryExceeded {
                requested,
                capacity,
            } => write!(
                f,
                "device memory exceeded: requested {requested} B of {capacity} B"
            ),
            SimError::Deadlock { stuck } => {
                write!(f, "simulation deadlocked; stuck threads: {stuck:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Complete output of one simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Device configuration the run used.
    pub device: DeviceConfig,
    /// Wall-clock end of the run (last host thread finish).
    pub makespan: SimTime,
    /// Per-application statistics, in application-id order.
    pub apps: Vec<AppStats>,
    /// Timeline spans (empty if tracing was disabled).
    pub trace: TraceLog,
    /// Device-wide resident thread count over time (drives the power
    /// model's occupancy term).
    pub resident_threads: TimeSeries,
    /// Number of non-idle SMX units over time.
    pub active_smx: TimeSeries,
    /// DMA busy indicator (0/1) per direction over time.
    pub dma_busy: [TimeSeries; 2],
    /// Number of discrete events processed (perf diagnostics).
    pub events: u64,
}

impl SimResult {
    /// Mean effective memory transfer latency across applications for a
    /// direction (the per-stream/per-application average of eq. 2).
    pub fn mean_effective_latency(&self, dir: Dir) -> Option<Dur> {
        let vals: Vec<Dur> = self
            .apps
            .iter()
            .filter_map(|a| a.transfers(dir).effective_latency())
            .collect();
        if vals.is_empty() {
            return None;
        }
        let total: u64 = vals.iter().map(|d| d.as_ns()).sum();
        Some(Dur::from_ns(total / vals.len() as u64))
    }

    /// Device occupancy (resident threads / capacity) averaged over the
    /// run.
    pub fn mean_occupancy(&self) -> f64 {
        let cap = self.device.max_resident_threads() as f64;
        if cap == 0.0 || self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.resident_threads
            .mean_over(SimTime::ZERO, self.makespan)
            / cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_latency_requires_both_ends() {
        let mut ts = TransferStats::default();
        assert_eq!(ts.effective_latency(), None);
        ts.note_service(SimTime::from_ns(100), SimTime::from_ns(150));
        ts.note_service(SimTime::from_ns(300), SimTime::from_ns(400));
        assert_eq!(ts.effective_latency(), Some(Dur::from_ns(300)));
        assert_eq!(ts.service_time, Dur::from_ns(150));
    }

    #[test]
    fn note_service_keeps_extremes() {
        let mut ts = TransferStats::default();
        ts.note_service(SimTime::from_ns(200), SimTime::from_ns(250));
        ts.note_service(SimTime::from_ns(50), SimTime::from_ns(80));
        assert_eq!(ts.first_start, Some(SimTime::from_ns(50)));
        assert_eq!(ts.last_end, Some(SimTime::from_ns(250)));
    }

    #[test]
    fn turnaround() {
        let mut a = AppStats::new(AppId(0), "x".into(), StreamId(0));
        assert_eq!(a.turnaround(), None);
        a.started = Some(SimTime::from_ns(10));
        a.finished = Some(SimTime::from_ns(110));
        assert_eq!(a.turnaround(), Some(Dur::from_ns(100)));
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::DeviceMemoryExceeded {
            requested: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("device memory exceeded"));
        let d = SimError::Deadlock {
            stuck: vec!["a".into()],
        };
        assert!(d.to_string().contains("deadlock"));
    }
}
