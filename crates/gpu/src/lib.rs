//! # hq-gpu — a discrete-event model of a Kepler-class GPU
//!
//! This crate is the hardware substrate for the Hyper-Q reproduction:
//! a deterministic simulator of the device the paper evaluates on (a
//! Tesla K20, compute capability 3.5) together with a CUDA-shaped host
//! interface.
//!
//! The model captures every mechanism the paper's techniques manipulate:
//!
//! * **SMX array** ([`smx`]) — 13 units with CC 3.5 residency limits
//!   (16 blocks / 2048 threads / 64 Ki registers / 48 KiB shared memory
//!   per SMX) executing resident warps under processor sharing.
//! * **Grid management** ([`gmu`]) — 32 Hyper-Q hardware work queues
//!   (or 1 in Fermi mode), GMU launch latency, and a thread-block
//!   dispatcher implementing the LEFTOVER lazy policy, plus a
//!   conservative-fit admission baseline.
//! * **DMA engines** ([`dma`]) — one per direction, serving transfers
//!   in host issue order; this is where the paper's false serialization
//!   and interleaving (Fig. 1) arise, and what the host-side transfer
//!   mutex (Fig. 2) tames.
//! * **Streams** ([`stream`]) — in-order work queues with
//!   `cudaStreamSynchronize` semantics.
//! * **Host threads** ([`host`], [`program`]) — one thread per
//!   application executing a program of driver calls with per-call
//!   overhead, launch stagger, and optional jitter.
//!
//! The entry point is [`sim::GpuSim`]; see its module docs for a
//! runnable example.

#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod dma;
pub mod fault;
pub mod gmu;
pub mod host;
pub mod kernel;
pub mod memory;
pub mod program;
pub mod result;
pub mod sim;
pub mod smx;
pub mod stream;
pub mod types;
pub mod validate;

pub use sim::prelude;
pub use sim::GpuSim;
