//! Behavioural tests of the device model: each test checks one
//! mechanism the paper's techniques rely on.

use hq_des::time::Dur;
use hq_gpu::prelude::*;

fn small_kernel(name: &str, blocks: u32, tpb: u32, work_us: u64) -> KernelDesc {
    KernelDesc::new(name, blocks, tpb, Dur::from_us(work_us))
}

/// A compute-only app: `n_launches` kernels back to back.
fn compute_app(label: &str, blocks: u32, tpb: u32, work_us: u64, launches: u32) -> Program {
    let mut b = Program::builder(label);
    for i in 0..launches {
        b = b.launch(small_kernel(&format!("k{i}"), blocks, tpb, work_us));
    }
    b.build()
}

/// A transfer-then-compute app (the paper's canonical pattern).
fn standard_app(label: &str, htod: &[u64], kernel: KernelDesc, dtoh: u64) -> Program {
    let mut b = Program::builder(label);
    for (i, &bytes) in htod.iter().enumerate() {
        b = b.htod(bytes, format!("in{i}"));
    }
    b.launch(kernel).dtoh(dtoh, "out").build()
}

fn run_apps(
    dev: DeviceConfig,
    programs: Vec<Program>,
    num_streams: u32,
    serial: bool,
    seed: u64,
) -> SimResult {
    let mut sim = GpuSim::new(dev, HostConfig::deterministic(), seed);
    let streams = sim.create_streams(num_streams);
    let mut prev: Option<AppId> = None;
    for (i, p) in programs.into_iter().enumerate() {
        let app = sim.add_app(p, streams[i % num_streams as usize]);
        if serial {
            if let Some(d) = prev {
                sim.set_start_after(app, d);
            }
            prev = Some(app);
        }
    }
    sim.run().expect("simulation completes")
}

#[test]
fn single_app_timeline_is_ordered() {
    let p = standard_app("a", &[1 << 20], small_kernel("k", 64, 256, 20), 1 << 20);
    let r = run_apps(DeviceConfig::tesla_k20(), vec![p], 1, false, 1);
    let a = &r.apps[0];
    assert_eq!(a.htod.count, 1);
    assert_eq!(a.dtoh.count, 1);
    assert_eq!(a.kernels_completed, 1);
    // HtoD completes before the kernel starts; kernel ends before DtoH.
    assert!(a.htod.last_end.unwrap() <= a.first_kernel_start.unwrap());
    assert!(a.last_kernel_end.unwrap() <= a.dtoh.first_start.unwrap());
    assert!(a.finished.unwrap() >= a.dtoh.last_end.unwrap());
}

#[test]
fn underutilizing_kernels_overlap_across_streams() {
    // Each app's kernel uses 4 blocks of 64 threads — a sliver of the
    // device. Eight concurrent apps should take far less than 8x the
    // serial time.
    let mk = |i: u32| compute_app(&format!("app{i}"), 4, 64, 200, 10);
    let programs: Vec<Program> = (0..8).map(mk).collect();
    let serial = run_apps(DeviceConfig::tesla_k20(), programs.clone(), 1, true, 1);
    let conc = run_apps(DeviceConfig::tesla_k20(), programs, 8, false, 1);
    let speedup = serial.makespan.as_ns() as f64 / conc.makespan.as_ns() as f64;
    assert!(
        speedup > 3.0,
        "tiny kernels should overlap heavily: speedup {speedup}"
    );
}

#[test]
fn saturating_kernels_gain_little_from_concurrency() {
    // 256-block grids of 256 threads saturate the K20 (104 resident);
    // total throughput is fixed, so concurrency ≈ serialization.
    let mk = |i: u32| compute_app(&format!("app{i}"), 256, 256, 50, 4);
    let programs: Vec<Program> = (0..4).map(mk).collect();
    let serial = run_apps(DeviceConfig::tesla_k20(), programs.clone(), 1, true, 1);
    let conc = run_apps(DeviceConfig::tesla_k20(), programs, 4, false, 1);
    let speedup = serial.makespan.as_ns() as f64 / conc.makespan.as_ns() as f64;
    assert!(
        speedup < 1.35,
        "saturating kernels can't speed up much: {speedup}"
    );
    assert!(
        speedup > 0.95,
        "concurrency must not be slower than serial (LEFTOVER does no worse): {speedup}"
    );
}

#[test]
fn copy_engine_interleaves_concurrent_transfer_stages() {
    // Four apps, each issuing four 256 KB HtoD transfers concurrently.
    // Because the engine serves in issue order and issues interleave,
    // each app's effective transfer latency spans most of the combined
    // stage — several times its private service time.
    let mk = |i: u32| {
        standard_app(
            &format!("app{i}"),
            &[256 << 10; 4],
            small_kernel("k", 8, 128, 100),
            64 << 10,
        )
    };
    let programs: Vec<Program> = (0..4).map(mk).collect();
    let r = run_apps(DeviceConfig::tesla_k20(), programs, 4, false, 7);
    for a in &r.apps {
        let le = a.htod.effective_latency().unwrap();
        let svc = a.htod.service_time;
        assert!(
            le.as_ns() > 2 * svc.as_ns(),
            "{}: Le {le} should be inflated well beyond service {svc}",
            a.label
        );
    }
}

#[test]
fn htod_mutex_restores_burst_transfers() {
    let mk = |i: u32| {
        standard_app(
            &format!("app{i}"),
            &[256 << 10; 4],
            small_kernel("k", 8, 128, 100),
            64 << 10,
        )
    };
    // Same workload as above, but each app's HtoD stage holds a mutex.
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 7);
    let streams = sim.create_streams(4);
    let mutex = sim.create_mutex();
    for i in 0..4u32 {
        let p = mk(i).with_htod_mutex(mutex, true);
        sim.add_app(p, streams[i as usize]);
    }
    let r = sim.run().unwrap();
    for a in &r.apps {
        let le = a.htod.effective_latency().unwrap();
        let svc = a.htod.service_time;
        let ratio = le.as_ns() as f64 / svc.as_ns() as f64;
        assert!(
            ratio < 1.25,
            "{}: with the mutex Le {le} should track service {svc} (ratio {ratio})",
            a.label
        );
    }
}

#[test]
fn lazy_policy_overlaps_oversubscribing_grids() {
    // Two 1024-block grids: each alone oversubscribes the 208-block
    // device. Under the lazy policy they interleave; under
    // conservative fit they serialize. Throughput is resource-bound
    // either way, so makespans are close — instead check *overlap*:
    // under Lazy, both kernels are running simultaneously at some
    // point; under ConservativeFit, never.
    let mk = |i: u32| compute_app(&format!("app{i}"), 1024, 256, 30, 1);
    let programs: Vec<Program> = (0..2).map(mk).collect();

    let lazy = run_apps(DeviceConfig::tesla_k20(), programs.clone(), 2, false, 3);
    let fit_cfg = DeviceConfig {
        admission: AdmissionPolicy::ConservativeFit,
        ..DeviceConfig::tesla_k20()
    };
    let fit = run_apps(fit_cfg, programs, 2, false, 3);

    let overlap = |r: &SimResult| {
        let a = &r.apps[0];
        let b = &r.apps[1];
        let s = a
            .first_kernel_start
            .unwrap()
            .max(b.first_kernel_start.unwrap());
        let e = a.last_kernel_end.unwrap().min(b.last_kernel_end.unwrap());
        e.checked_since(s).map(|d| d.as_ns()).unwrap_or(0)
    };
    assert!(
        overlap(&lazy) > 0,
        "lazy policy should overlap oversubscribing grids"
    );
    assert_eq!(
        overlap(&fit),
        0,
        "conservative fit must serialize oversubscribing grids"
    );
    // And lazy is never slower.
    assert!(lazy.makespan <= fit.makespan);
}

#[test]
fn fermi_single_queue_serializes_independent_kernels() {
    let mk = |i: u32| compute_app(&format!("app{i}"), 4, 64, 500, 1);
    let programs: Vec<Program> = (0..2).map(mk).collect();
    let hyperq = run_apps(DeviceConfig::tesla_k20(), programs.clone(), 2, false, 5);
    let fermi = run_apps(DeviceConfig::fermi_like(), programs, 2, false, 5);

    let overlap = |r: &SimResult| {
        let a = &r.apps[0];
        let b = &r.apps[1];
        let s = a
            .first_kernel_start
            .unwrap()
            .max(b.first_kernel_start.unwrap());
        let e = a.last_kernel_end.unwrap().min(b.last_kernel_end.unwrap());
        e.checked_since(s).map(|d| d.as_ns()).unwrap_or(0)
    };
    assert!(overlap(&hyperq) > 0, "Hyper-Q overlaps independent kernels");
    assert_eq!(overlap(&fermi), 0, "single queue falsely serializes them");
    assert!(fermi.makespan > hyperq.makespan);
}

#[test]
fn htod_and_dtoh_use_independent_engines() {
    // One app only uploads, another only downloads: the two directions
    // must overlap almost entirely.
    let up = Program::builder("up").htod(8 << 20, "big_in").build();
    let down = Program::builder("down")
        .launch(small_kernel("prep", 1, 32, 1))
        .dtoh(8 << 20, "big_out")
        .build();
    let r = run_apps(DeviceConfig::tesla_k20(), vec![up, down], 2, false, 9);
    let a = &r.apps[0].htod;
    let b = &r.apps[1].dtoh;
    let s = a.first_start.unwrap().max(b.first_start.unwrap());
    let e = a.last_end.unwrap().min(b.last_end.unwrap());
    assert!(
        e.checked_since(s)
            .map(|d| d.as_ns() > 1_000_000)
            .unwrap_or(false),
        "HtoD and DtoH should overlap on separate engines"
    );
}

#[test]
fn deadlock_is_reported_not_hung() {
    // Classic ABBA cycle: each thread holds one mutex and waits forever
    // for the other's.
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let m1 = sim.create_mutex();
    let m2 = sim.create_mutex();
    let hold = HostOp::HostWork {
        dur: Dur::from_us(100),
    };
    let p0 = Program {
        label: "ab".into(),
        ops: vec![HostOp::MutexLock(m1), hold.clone(), HostOp::MutexLock(m2)],
        device_bytes: 0,
    };
    let p1 = Program {
        label: "ba".into(),
        ops: vec![HostOp::MutexLock(m2), hold, HostOp::MutexLock(m1)],
        device_bytes: 0,
    };
    sim.add_app(p0, s);
    sim.add_app(p1, s);
    match sim.run() {
        Err(SimError::Deadlock { stuck }) => {
            assert_eq!(stuck.len(), 2);
            // The diagnostic names the mutex each thread waits on and
            // the thread currently holding it.
            assert!(
                stuck[0].contains("ab (blocked on MutexId(1) held by ba)"),
                "{stuck:?}"
            );
            assert!(
                stuck[1].contains("ba (blocked on MutexId(0) held by ab)"),
                "{stuck:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn thread_ending_while_holding_mutex_frees_waiters() {
    // A program that locks and never unlocks used to strand every
    // waiter in a deadlock; the forced-release safety net now unblocks
    // them and records the anomaly.
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let m = sim.create_mutex();
    let p0 = Program {
        label: "locker".into(),
        ops: vec![HostOp::MutexLock(m)],
        device_bytes: 0,
    };
    let p1 = Program {
        label: "waiter".into(),
        ops: vec![HostOp::MutexLock(m)],
        device_bytes: 0,
    };
    sim.add_app(p0, s);
    sim.add_app(p1, s);
    let r = sim.run().expect("forced release resolves the stranded waiter");
    // Both threads end while holding the mutex (the waiter acquires it
    // through the handoff and its program immediately ends).
    assert_eq!(r.faults.forced_mutex_releases, 2);
    assert_eq!(r.faults.held_mutexes, 0, "no mutex left held at drain");
}

#[test]
fn device_memory_overcommit_is_rejected() {
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let p = Program::builder("hog")
        .device_alloc(6 * 1024 * 1024 * 1024)
        .build();
    sim.add_app(p, s);
    match sim.run() {
        Err(SimError::DeviceMemoryExceeded {
            app,
            app_requested,
            requested,
            capacity,
        }) => {
            assert!(requested > capacity);
            assert_eq!(app, "hog", "error names the failing app");
            assert_eq!(app_requested, 6 * 1024 * 1024 * 1024);
        }
        other => panic!("expected memory error, got {other:?}"),
    }
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let mk = |i: u32| {
        standard_app(
            &format!("app{i}"),
            &[128 << 10; 3],
            small_kernel("k", 32, 128, 80),
            64 << 10,
        )
    };
    let host = HostConfig::default(); // jitter enabled
    let run = |seed| {
        let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, seed);
        let streams = sim.create_streams(4);
        for i in 0..4u32 {
            sim.add_app(mk(i), streams[i as usize]);
        }
        sim.run().unwrap().makespan
    };
    assert_eq!(run(11), run(11), "same seed, same makespan");
    assert_ne!(run(11), run(12), "jitter differs across seeds");
}

#[test]
fn trace_records_all_op_kinds() {
    let p = standard_app(
        "traced",
        &[1 << 20],
        small_kernel("k", 64, 256, 20),
        1 << 20,
    );
    let r = run_apps(DeviceConfig::tesla_k20(), vec![p], 1, false, 1);
    let kinds: Vec<_> = r.trace.spans().iter().map(|s| s.kind).collect();
    use hq_des::trace::SpanKind;
    assert!(kinds.contains(&SpanKind::CopyHtoD));
    assert!(kinds.contains(&SpanKind::CopyDtoH));
    assert!(kinds.contains(&SpanKind::Kernel));
    assert_eq!(r.trace.makespan(), r.apps[0].dtoh.last_end.unwrap());
}

#[test]
fn occupancy_series_rises_and_returns_to_zero() {
    let p = compute_app("occ", 208, 256, 100, 2);
    let r = run_apps(DeviceConfig::tesla_k20(), vec![p], 1, false, 1);
    let peak = r
        .resident_threads
        .max_over(hq_des::time::SimTime::ZERO, r.makespan)
        .unwrap();
    assert!(peak > 0.0);
    // After the run the device must be empty.
    assert_eq!(r.resident_threads.value_at(r.makespan), Some(0.0));
    assert_eq!(r.active_smx.value_at(r.makespan), Some(0.0));
}

#[test]
fn mean_occupancy_bounded() {
    let p = compute_app("occ", 104, 256, 100, 4);
    let r = run_apps(DeviceConfig::tesla_k20(), vec![p], 1, false, 1);
    let occ = r.mean_occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
}

#[test]
fn zero_block_grid_completes_without_deadlock() {
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let degenerate = KernelDesc::new("empty", Dim3 { x: 0, y: 1, z: 1 }, 32u32, Dur::from_us(5));
    let p = Program::builder("degenerate")
        .launch(degenerate)
        .launch(small_kernel("real", 4, 64, 10))
        .build();
    sim.add_app(p, s);
    let r = sim.run().expect("no deadlock on empty grid");
    assert_eq!(r.apps[0].kernels_completed, 2);
}

#[test]
fn zero_byte_transfer_costs_only_latency() {
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let p = Program::builder("tiny").htod(0, "empty").build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let svc = r.apps[0].htod.service_time;
    assert_eq!(svc, DeviceConfig::tesla_k20().dma.latency);
}

#[test]
fn streams_beyond_hw_queue_count_falsely_serialize() {
    // 33 streams on a 32-queue device: streams 0 and 32 share queue 0,
    // so their kernels serialize even though the streams are distinct.
    let mk = || compute_app("app", 4, 64, 500, 1);
    let run_with_streams = |s_a: u32, s_b: u32| {
        let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 3);
        let streams = sim.create_streams(33);
        sim.add_app(mk(), streams[s_a as usize]);
        sim.add_app(mk(), streams[s_b as usize]);
        let r = sim.run().unwrap();
        let a = &r.apps[0];
        let b = &r.apps[1];
        let s = a
            .first_kernel_start
            .unwrap()
            .max(b.first_kernel_start.unwrap());
        let e = a.last_kernel_end.unwrap().min(b.last_kernel_end.unwrap());
        e.checked_since(s).map(|d| d.as_ns()).unwrap_or(0)
    };
    assert!(run_with_streams(0, 1) > 0, "distinct queues overlap");
    assert_eq!(run_with_streams(0, 32), 0, "shared queue serializes");
}

#[test]
fn host_work_only_program_completes() {
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1);
    let s = sim.create_stream();
    let p = Program::builder("cpu-only")
        .host_work(Dur::from_ms(2))
        .build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    assert!(r.makespan >= hq_des::time::SimTime::from_ns(2_000_000));
    assert_eq!(r.apps[0].kernels_completed, 0);
}
