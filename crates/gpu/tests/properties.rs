//! Property-based tests of the device model's safety invariants.

use hq_des::time::{Dur, SimTime};
use hq_gpu::kernel::KernelDesc;
use hq_gpu::prelude::*;
use hq_gpu::smx::Smx;
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
    (1u32..64, 1u32..1024, 1u64..200, 0u32..48_000, 8u32..64).prop_map(
        |(blocks, tpb, work_us, smem, regs)| {
            KernelDesc::new("k", blocks, tpb, Dur::from_us(work_us))
                .with_smem(smem)
                .with_regs(regs)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever sequence of placements and retirements happens, SMX
    /// residency counters never exceed the hardware limits and return
    /// to zero when everything retires.
    #[test]
    fn smx_residency_bounded(kernels in proptest::collection::vec(kernel_strategy(), 1..20)) {
        let limits = SmxLimits::kepler();
        let mut table = hq_des::intern::Interner::new();
        let kernels: Vec<KernelInfo> = kernels.iter().map(|k| k.compile(&mut table)).collect();
        let mut smx = Smx::new(limits);
        smx.advance(SimTime::ZERO);
        let mut placed: Vec<u64> = Vec::new();
        for (i, k) in kernels.iter().enumerate() {
            let fit = smx.max_fit(k);
            if fit == 0 {
                continue;
            }
            let n = fit.min(k.blocks());
            smx.place(SimTime::ZERO, i as u64, GridId(i as u32), k, n);
            placed.push(i as u64);
            prop_assert!(smx.resident_blocks() <= limits.max_blocks);
            prop_assert!(smx.resident_threads() <= limits.max_threads);
        }
        for token in placed {
            prop_assert!(smx.evict(token).is_some());
        }
        prop_assert!(smx.is_idle());
        prop_assert_eq!(smx.resident_threads(), 0);
        prop_assert_eq!(smx.resident_warps(), 0);
    }

    /// max_fit never admits a group that would exceed any limit.
    #[test]
    fn max_fit_is_safe(k in kernel_strategy(), preload in 0u32..8) {
        let limits = SmxLimits::kepler();
        let mut table = hq_des::intern::Interner::new();
        let k = k.compile(&mut table);
        let mut smx = Smx::new(limits);
        smx.advance(SimTime::ZERO);
        // Preload with a fixed medium kernel to create partial state.
        let filler = KernelDesc::new("fill", 16u32, 128u32, Dur::from_us(10))
            .with_smem(1024)
            .compile(&mut table);
        let pre = smx.max_fit(&filler).min(preload);
        if pre > 0 {
            smx.place(SimTime::ZERO, 999, GridId(99), &filler, pre);
        }
        let fit = smx.max_fit(&k);
        if fit > 0 {
            smx.place(SimTime::ZERO, 1000, GridId(100), &k, fit);
            prop_assert!(smx.resident_blocks() <= limits.max_blocks);
            prop_assert!(smx.resident_threads() <= limits.max_threads);
            // After a maximal placement, no further block fits.
            prop_assert_eq!(smx.max_fit(&k), 0);
        }
    }

    /// Random small workloads always complete (no deadlock, no loss):
    /// every app finishes, every kernel completes, and the makespan
    /// bounds every app's activity.
    #[test]
    fn random_workloads_complete(
        seed in any::<u64>(),
        napps in 1usize..6,
        nstreams in 1u32..6,
        launches in 1usize..5,
        bytes in 1u64..(4 << 20),
    ) {
        let mut sim = GpuSim::with_trace(
            DeviceConfig::tesla_k20(),
            HostConfig::default(),
            seed,
            true,
        );
        let streams = sim.create_streams(nstreams);
        for i in 0..napps {
            let mut b = Program::builder(format!("app{i}")).htod(bytes, "in");
            for j in 0..launches {
                b = b.launch(KernelDesc::new(
                    format!("k{j}"),
                    1 + (seed as u32 + i as u32 * 7 + j as u32) % 256,
                    32 * (1 + (i as u32 + j as u32) % 8),
                    Dur::from_us(5 + (j as u64 * 13) % 50),
                ));
            }
            sim.add_app(b.dtoh(bytes, "out").build(), streams[i % streams.len()]);
        }
        let r = sim.run().expect("no deadlock");
        let violations = hq_gpu::validate::validate(&r);
        prop_assert!(violations.is_empty(), "invariants violated: {violations:?}");
        prop_assert_eq!(r.apps.len(), napps);
        for a in &r.apps {
            prop_assert!(a.finished.is_some(), "{} unfinished", a.label);
            prop_assert_eq!(a.kernels_completed as usize, launches);
            prop_assert_eq!(a.htod.count, 1);
            prop_assert_eq!(a.dtoh.count, 1);
            prop_assert!(a.finished.unwrap() <= r.makespan);
            prop_assert!(a.dtoh.last_end.unwrap() <= a.finished.unwrap());
        }
        // Device fully drained.
        prop_assert_eq!(r.resident_threads.value_at(r.makespan), Some(0.0));
    }

    /// In-stream serialization: spans on one lane never overlap.
    #[test]
    fn stream_spans_do_not_overlap(seed in any::<u64>(), napps in 2usize..5) {
        let mut sim = GpuSim::with_trace(
            DeviceConfig::tesla_k20(),
            HostConfig::default(),
            seed,
            true,
        );
        // All apps share one stream: everything must serialize.
        let s = sim.create_stream();
        for i in 0..napps {
            let p = Program::builder(format!("app{i}"))
                .htod(256 << 10, "in")
                .launch(KernelDesc::new("k", 32u32, 128u32, Dur::from_us(30)))
                .dtoh(256 << 10, "out")
                .build();
            sim.add_app(p, s);
        }
        let r = sim.run().expect("runs");
        let mut spans = r.trace.lane_spans(0);
        spans.sort_by_key(|sp| (sp.start, sp.end));
        for w in spans.windows(2) {
            prop_assert!(
                w[0].end <= w[1].start,
                "in-stream overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// Determinism: identical seeds produce identical makespans and
    /// identical per-app statistics.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let build = || {
            let mut sim = GpuSim::with_trace(
                DeviceConfig::tesla_k20(),
                HostConfig::default(),
                seed,
                false,
            );
            let streams = sim.create_streams(3);
            for i in 0..3u32 {
                let p = Program::builder(format!("app{i}"))
                    .htod(512 << 10, "in")
                    .launch(KernelDesc::new("k", 100u32, 256u32, Dur::from_us(40)))
                    .dtoh(128 << 10, "out")
                    .build();
                sim.add_app(p, streams[i as usize]);
            }
            sim.run().unwrap()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            prop_assert_eq!(x.finished, y.finished);
            prop_assert_eq!(x.htod.first_start, y.htod.first_start);
            prop_assert_eq!(x.last_kernel_end, y.last_kernel_end);
        }
    }

    /// The serialized baseline is never faster than its own apps run
    /// concurrently on distinct streams (LEFTOVER does no worse).
    #[test]
    fn concurrency_never_loses_to_serial_chaining(seed in 0u64..32) {
        let programs: Vec<Program> = (0..3)
            .map(|i| {
                Program::builder(format!("app{i}"))
                    .htod(128 << 10, "in")
                    .launch(KernelDesc::new("k", 8u32, 64u32, Dur::from_us(100)))
                    .dtoh(128 << 10, "out")
                    .build()
            })
            .collect();
        let serial = {
            let mut sim = GpuSim::with_trace(
                DeviceConfig::tesla_k20(),
                HostConfig::deterministic(),
                seed,
                false,
            );
            let s = sim.create_stream();
            let mut prev = None;
            for p in programs.clone() {
                let id = sim.add_app(p, s);
                if let Some(d) = prev {
                    sim.set_start_after(id, d);
                }
                prev = Some(id);
            }
            sim.run().unwrap().makespan
        };
        let conc = {
            let mut sim = GpuSim::with_trace(
                DeviceConfig::tesla_k20(),
                HostConfig::deterministic(),
                seed,
                false,
            );
            let streams = sim.create_streams(3);
            for (i, p) in programs.into_iter().enumerate() {
                sim.add_app(p, streams[i]);
            }
            sim.run().unwrap().makespan
        };
        prop_assert!(
            conc <= serial,
            "concurrent {conc} slower than serial {serial}"
        );
    }
}
