//! Analytic cross-validation: closed-form expectations for simple
//! scenarios must match the simulator *exactly* (same arithmetic, no
//! tolerance games). These tests pin the timing semantics so model
//! refactors cannot silently shift results.

use hq_des::time::Dur;
use hq_gpu::prelude::*;

fn det_sim() -> GpuSim {
    GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 0)
}

#[test]
fn dma_service_time_is_latency_plus_bandwidth() {
    let dma = DeviceConfig::tesla_k20().dma;
    let sizes: [u64; 3] = [4 << 10, 1 << 20, 7 << 20];
    let mut sim = det_sim();
    let s = sim.create_stream();
    let mut b = Program::builder("xfer");
    for (i, &bytes) in sizes.iter().enumerate() {
        b = b.htod(bytes, format!("buf{i}"));
    }
    sim.add_app(b.build(), s);
    let r = sim.run().unwrap();
    let expect: Dur = sizes.iter().map(|&b| dma.transfer_time(b)).sum();
    assert_eq!(
        r.apps[0].htod.service_time, expect,
        "engine service must be exactly Σ(latency + bytes/bw)"
    );
}

#[test]
fn uncontended_transfers_have_le_equal_to_busy_window() {
    // One app alone: its effective latency is its own transfers plus
    // the inter-issue driver gaps — never more than service + 2 gaps.
    let host = HostConfig::deterministic();
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 0);
    let s = sim.create_stream();
    let p = Program::builder("solo")
        .htod(1 << 20, "a")
        .htod(1 << 20, "b")
        .build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let svc = r.apps[0].htod.service_time;
    let le = r.apps[0].htod.effective_latency().unwrap();
    assert!(le >= svc);
    let slack = le - svc;
    assert!(
        slack <= host.driver_call_overhead.mul_f64(2.0),
        "uncontended Le should track service: slack {slack}"
    );
}

#[test]
fn single_wave_kernel_duration_matches_processor_sharing_formula() {
    // 104 blocks of 256 threads: exactly 8 blocks on each of 13 SMXs in
    // one wave. 8 blocks × 8 warps = 64 resident warps vs. an issue
    // capacity of 8 → rate 1/8 → duration = 8 × work_per_block.
    let work = Dur::from_us(10);
    let mut sim = det_sim();
    let s = sim.create_stream();
    let p = Program::builder("wave")
        .launch(KernelDesc::new("k", 104u32, 256u32, work))
        .build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let a = &r.apps[0];
    let span = a.last_kernel_end.unwrap() - a.first_kernel_start.unwrap();
    assert_eq!(span, work.mul_f64(8.0), "one wave at rate 1/8");
}

#[test]
fn two_wave_kernel_runs_exactly_twice_as_long() {
    let work = Dur::from_us(10);
    let run_blocks = |blocks: u32| {
        let mut sim = det_sim();
        let s = sim.create_stream();
        let p = Program::builder("wave")
            .launch(KernelDesc::new("k", blocks, 256u32, work))
            .build();
        sim.add_app(p, s);
        let r = sim.run().unwrap();
        let a = &r.apps[0];
        a.last_kernel_end.unwrap() - a.first_kernel_start.unwrap()
    };
    assert_eq!(run_blocks(208).as_ns(), 2 * run_blocks(104).as_ns());
}

#[test]
fn sub_capacity_kernel_runs_at_full_rate() {
    // 13 blocks of 32 threads: one 1-warp block per SMX, rate 1.0 —
    // kernel span equals the nominal block duration exactly.
    let work = Dur::from_us(25);
    let mut sim = det_sim();
    let s = sim.create_stream();
    let p = Program::builder("tiny")
        .launch(KernelDesc::new("k", 13u32, 32u32, work))
        .build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let a = &r.apps[0];
    assert_eq!(
        a.last_kernel_end.unwrap() - a.first_kernel_start.unwrap(),
        work
    );
}

#[test]
fn kernel_start_is_launch_latency_after_issue() {
    // With zero jitter the kernel's first dispatch is exactly
    // thread-start + driver call + GMU launch latency.
    let dev = DeviceConfig::tesla_k20();
    let host = HostConfig::deterministic();
    let mut sim = GpuSim::new(dev.clone(), host, 0);
    let s = sim.create_stream();
    let p = Program::builder("k-only")
        .launch(KernelDesc::new("k", 1u32, 32u32, Dur::from_us(5)))
        .build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let start = r.apps[0].first_kernel_start.unwrap();
    // Thread starts at t=0 (first thread, no jitter); the launch call
    // enqueues at t=0 and the grid becomes dispatchable after the GMU
    // latency.
    assert_eq!(start.as_ns(), dev.kernel_launch_latency.as_ns());
}

#[test]
fn serial_chain_makespan_is_sum_plus_stagger() {
    // Two identical single-kernel apps chained: makespan equals
    // 2 × app_time + stagger (thread 2 starts one stagger after thread
    // 1 finishes).
    let host = HostConfig::deterministic();
    let mk = || {
        Program::builder("app")
            .launch(KernelDesc::new("k", 13u32, 32u32, Dur::from_us(100)))
            .build()
    };
    let solo = {
        let mut sim = det_sim();
        let s = sim.create_stream();
        sim.add_app(mk(), s);
        sim.run().unwrap().makespan
    };
    let chained = {
        let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 0);
        let s = sim.create_stream();
        let a = sim.add_app(mk(), s);
        let b = sim.add_app(mk(), s);
        sim.set_start_after(b, a);
        sim.run().unwrap().makespan
    };
    assert_eq!(
        chained.as_ns(),
        2 * solo.as_ns() + host.thread_launch_stagger.as_ns()
    );
}

#[test]
fn stream_sync_completes_at_last_op_end_plus_wake() {
    // The app's finish time is its last DtoH completion plus the fixed
    // 500ns sync wake-up (no jitter in deterministic mode).
    let mut sim = det_sim();
    let s = sim.create_stream();
    let p = Program::builder("app").htod(1 << 20, "in").build();
    sim.add_app(p, s);
    let r = sim.run().unwrap();
    let a = &r.apps[0];
    let end = a.htod.last_end.unwrap();
    assert_eq!(a.finished.unwrap().as_ns(), end.as_ns() + 500);
}
