//! Behavioural tests of the online invariant auditor.
//!
//! Two families:
//!
//! * a proptest sweep asserting fault-free random configurations run to
//!   completion under the auditor with zero violations (and identically
//!   to their unaudited twin), and
//! * per-fault-class regressions (copy-fail / kernel-fault / hang)
//!   asserting each audited run either completes cleanly or ends with
//!   the app `Failed` — never a missed-kill hang or an audit abort.

use hq_des::time::Dur;
use hq_gpu::prelude::*;
use hq_gpu::validate::assert_valid;
use proptest::prelude::*;

fn device_for(case: u64) -> DeviceConfig {
    let mut dev = match case % 3 {
        0 => DeviceConfig::tesla_k20(),
        1 => DeviceConfig::tesla_k40(),
        _ => DeviceConfig::fermi_like(),
    };
    if case.is_multiple_of(5) {
        dev.admission = AdmissionPolicy::ConservativeFit;
    }
    if case.is_multiple_of(7) {
        dev.dma.service_order = ServiceOrder::IssueOrder;
    }
    dev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free random configs produce zero audit violations: the
    /// audited run succeeds, validates clean, and matches the unaudited
    /// run event for event.
    #[test]
    fn fault_free_runs_audit_clean(
        seed in any::<u64>(),
        case in any::<u64>(),
        napps in 1usize..6,
        nstreams in 1u32..6,
        launches in 1usize..4,
        bytes in 1u64..(2 << 20),
    ) {
        let build = |audited: bool| {
            let mut sim = GpuSim::with_trace(device_for(case), HostConfig::default(), seed, false);
            if audited {
                sim.enable_audit();
            }
            let streams = sim.create_streams(nstreams);
            for i in 0..napps {
                let mut b = Program::builder(format!("app{i}")).htod(bytes, "in");
                for j in 0..launches {
                    b = b.launch(KernelDesc::new(
                        format!("k{j}"),
                        1 + (seed as u32 + i as u32 * 11 + j as u32) % 192,
                        32 * (1 + (i as u32 + j as u32) % 8),
                        Dur::from_us(5 + (j as u64 * 17) % 40),
                    ));
                }
                sim.add_app(b.dtoh(bytes, "out").sync().build(), streams[i % streams.len()]);
            }
            sim.run()
        };
        let audited = build(true).expect("fault-free audited run must not trip the auditor");
        assert_valid(&audited);
        let plain = build(false).expect("unaudited twin");
        // Auditing is purely observational.
        prop_assert_eq!(audited.makespan, plain.makespan);
        prop_assert_eq!(audited.events, plain.events);
    }
}

/// Run one two-app workload with a scripted fault against app 0 and the
/// auditor enabled; return the result (the run must not deadlock or
/// trip the auditor).
fn run_faulted(plan: FaultPlan, watchdog: bool) -> SimResult {
    let host = if watchdog {
        HostConfig::deterministic().with_watchdog(Dur::from_ms(2))
    } else {
        HostConfig::deterministic()
    };
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 11);
    sim.set_fault_plan(plan);
    sim.enable_audit();
    let streams = sim.create_streams(2);
    for i in 0..2u32 {
        let p = Program::builder(format!("app{i}"))
            .htod(512 << 10, "in")
            .launch(KernelDesc::new("k", 64u32, 128u32, Dur::from_us(25)))
            .dtoh(256 << 10, "out")
            .sync()
            .build();
        sim.add_app(p, streams[i as usize]);
    }
    match sim.run() {
        Ok(r) => r,
        Err(e) => panic!("faulted run must complete under audit, got: {e}"),
    }
}

#[test]
fn audited_copy_fault_fails_app_cleanly() {
    let r = run_faulted(
        FaultPlan::none().with_fault(FaultKind::CopyFail, AppId(0), 0),
        false,
    );
    assert_valid(&r);
    assert_eq!(r.faults.copy_faults, 1);
    assert!(
        matches!(r.apps[0].outcome, AppOutcome::Failed { reason: FaultKind::CopyFail }),
        "{:?}",
        r.apps[0].outcome
    );
    assert_eq!(r.apps[1].outcome, AppOutcome::Completed);
}

#[test]
fn audited_kernel_fault_fails_app_cleanly() {
    let r = run_faulted(
        FaultPlan::none().with_fault(FaultKind::KernelFault, AppId(0), 0),
        false,
    );
    assert_valid(&r);
    assert_eq!(r.faults.kernel_faults, 1);
    assert!(
        matches!(r.apps[0].outcome, AppOutcome::Failed { reason: FaultKind::KernelFault }),
        "{:?}",
        r.apps[0].outcome
    );
    assert_eq!(r.apps[1].outcome, AppOutcome::Completed);
}

#[test]
fn audited_hang_is_killed_never_missed() {
    // A hang with the watchdog armed must end in a kill — the audited
    // run completing at all proves the kill was not missed, and the
    // kill-reclaim invariant checks it swept the hung grid's residency.
    let r = run_faulted(
        FaultPlan::none().with_fault(FaultKind::KernelHang, AppId(0), 0),
        true,
    );
    assert_valid(&r);
    assert!(r.faults.watchdog_kills >= 1, "{:?}", r.faults);
    assert!(
        matches!(r.apps[0].outcome, AppOutcome::Failed { reason: FaultKind::KernelHang }),
        "{:?}",
        r.apps[0].outcome
    );
}

/// Measure auditing overhead on a copy/kernel-heavy workload (release
/// only — `#[ignore]`d so debug runs stay fast; `scripts/ci.sh` runs it
/// via `--include-ignored`). The bound is deliberately loose: the point
/// is a number in the test output and a backstop against the auditor
/// becoming accidentally quadratic, not a tight perf gate on a noisy
/// 1-CPU box.
#[test]
#[ignore = "timing measurement; run in release via scripts/ci.sh"]
fn audit_overhead_is_bounded() {
    let build = |audited: bool| {
        let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 3);
        if audited {
            sim.enable_audit();
        }
        let streams = sim.create_streams(8);
        for i in 0..16u32 {
            let mut b = Program::builder(format!("app{i}")).htod(1 << 20, "in");
            for j in 0..8 {
                b = b.launch(KernelDesc::new(
                    format!("k{j}"),
                    64u32,
                    128u32,
                    Dur::from_us(20),
                ));
            }
            sim.add_app(b.dtoh(1 << 20, "out").sync().build(), streams[(i % 8) as usize]);
        }
        sim
    };
    let time = |audited: bool| {
        // Best-of-3 to shrug off scheduler noise.
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                build(audited).run().expect("runs clean");
                t.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let plain = time(false);
    let audited = time(true);
    let ratio = audited.as_secs_f64() / plain.as_secs_f64().max(1e-9);
    eprintln!("audit overhead: plain {plain:?}, audited {audited:?}, ratio {ratio:.2}x");
    assert!(ratio < 10.0, "auditing cost blew up: {ratio:.2}x");
}

#[test]
fn audited_random_fault_rates_never_hang() {
    // A soak in miniature: probabilistic faults of every class, watchdog
    // armed, auditor on. Every seed must end in a clean result — apps
    // Completed or Failed — with a consistent fault ledger.
    for seed in 0..8u64 {
        let plan = FaultPlan::none()
            .with_rate(FaultKind::CopyFail, 0.2)
            .with_rate(FaultKind::KernelFault, 0.2)
            .with_rate(FaultKind::KernelHang, 0.2)
            .with_seed(seed);
        let r = run_faulted(plan, true);
        assert_valid(&r);
        for a in &r.apps {
            assert!(
                matches!(a.outcome, AppOutcome::Completed | AppOutcome::Failed { .. }),
                "seed {seed}: unexpected outcome {:?}",
                a.outcome
            );
        }
    }
}
