//! Fault-injection and watchdog behaviour: every injected failure mode
//! must drain the simulator cleanly — no deadlock, no leaked residency,
//! no stranded host thread — with the damage visible in the result.

use hq_des::time::Dur;
use hq_gpu::prelude::*;
use hq_gpu::validate::assert_valid;

fn app(label: &str, kernel_blocks: u32, work_us: u64) -> Program {
    Program::builder(label)
        .htod(512 << 10, "in")
        .launch(KernelDesc::new(
            "k",
            kernel_blocks,
            128u32,
            Dur::from_us(work_us),
        ))
        .dtoh(256 << 10, "out")
        .build()
}

fn sim_with(plan: FaultPlan, watchdog: Option<Dur>) -> GpuSim {
    let mut host = HostConfig::deterministic();
    host.watchdog_timeout = watchdog;
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 42);
    let streams = sim.create_streams(3);
    for i in 0..3u32 {
        sim.add_app(app(&format!("app{i}"), 32, 60), streams[i as usize]);
    }
    sim.set_fault_plan(plan);
    sim
}

#[test]
fn copy_fault_poisons_stream_and_drains() {
    let plan = FaultPlan::none().with_fault(FaultKind::CopyFail, AppId(1), 0);
    let r = sim_with(plan, None).run().expect("run drains");
    assert_valid(&r);
    assert_eq!(r.faults.copy_faults, 1);
    let failed = &r.apps[1];
    assert_eq!(
        failed.outcome,
        AppOutcome::Failed {
            reason: FaultKind::CopyFail
        }
    );
    // The kernel and DtoH behind the failed copy complete-with-error
    // instead of executing.
    assert!(r.faults.ops_errored >= 2, "{:?}", r.faults);
    assert_eq!(failed.kernels_completed, 0);
    // The healthy apps are untouched.
    for i in [0usize, 2] {
        assert_eq!(r.apps[i].outcome, AppOutcome::Completed);
        assert_eq!(r.apps[i].kernels_completed, 1);
    }
}

#[test]
fn kernel_fault_aborts_partway_and_drains() {
    let plan = FaultPlan::none().with_fault(FaultKind::KernelFault, AppId(0), 0);
    let r = sim_with(plan, None).run().expect("run drains");
    assert_valid(&r);
    assert_eq!(r.faults.kernel_faults, 1);
    assert_eq!(
        r.apps[0].outcome,
        AppOutcome::Failed {
            reason: FaultKind::KernelFault
        }
    );
    assert_eq!(r.apps[0].kernels_completed, 0, "aborted grid never counts");
    assert_eq!(r.faults.leaked_residency, 0, "kill path reclaims residency");
}

#[test]
fn hung_kernel_is_killed_by_watchdog() {
    let plan = FaultPlan::none().with_fault(FaultKind::KernelHang, AppId(2), 0);
    let r = sim_with(plan, Some(Dur::from_ms(5)))
        .run()
        .expect("watchdog reclaims the hang");
    assert_valid(&r);
    assert_eq!(r.faults.watchdog_kills, 1);
    assert_eq!(
        r.apps[2].outcome,
        AppOutcome::Failed {
            reason: FaultKind::KernelHang
        }
    );
    assert_eq!(r.faults.leaked_residency, 0);
    for i in [0usize, 1] {
        assert_eq!(r.apps[i].outcome, AppOutcome::Completed);
    }
}

#[test]
fn hung_kernel_without_watchdog_is_reported_as_deadlock() {
    let plan = FaultPlan::none().with_fault(FaultKind::KernelHang, AppId(2), 0);
    match sim_with(plan, None).run() {
        Err(SimError::Deadlock { stuck }) => {
            assert_eq!(stuck.len(), 1);
            assert!(stuck[0].contains("app2"), "{stuck:?}");
            assert!(stuck[0].contains("blocked syncing"), "{stuck:?}");
        }
        other => panic!("expected deadlock without a watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_rearms_on_progress_and_never_kills_healthy_grids() {
    // An oversubscribing grid completes its blocks in waves (208
    // resident at a time); a watchdog window longer than one wave sees
    // progress at every firing and must re-arm, never kill.
    let mut host = HostConfig::deterministic();
    host.watchdog_timeout = Some(Dur::from_us(300));
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 7);
    let s = sim.create_stream();
    let p = Program::builder("waves")
        .launch(KernelDesc::new("k", 1024u32, 32u32, Dur::from_us(100)))
        .build();
    sim.add_app(p, s);
    let r = sim.run().expect("healthy run");
    assert_valid(&r);
    assert_eq!(r.faults.watchdog_kills, 0);
    assert!(r.faults.watchdog_rearms > 0, "{:?}", r.faults);
    assert_eq!(r.apps[0].outcome, AppOutcome::Completed);
}

#[test]
fn empty_fault_plan_is_bit_identical_with_or_without_layer() {
    // The reliability layer must be invisible to fault-free runs: same
    // makespan and identical per-app stats whether or not a (no-op)
    // plan is installed, and regardless of an armed watchdog.
    let run = |plan: Option<FaultPlan>, watchdog: Option<Dur>| {
        let host = HostConfig {
            watchdog_timeout: watchdog,
            ..HostConfig::default() // jitter on: stress RNG alignment
        };
        let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), host, 11);
        let streams = sim.create_streams(4);
        for i in 0..4u32 {
            sim.add_app(app(&format!("app{i}"), 48, 120), streams[i as usize]);
        }
        if let Some(p) = plan {
            sim.set_fault_plan(p);
        }
        sim.run().unwrap()
    };
    let base = run(None, None);
    let with_plan = run(Some(FaultPlan::none()), None);
    let with_dog = run(None, Some(Dur::from_ms(50)));
    assert_eq!(base.makespan, with_plan.makespan);
    assert_eq!(
        format!("{:?}", base.apps),
        format!("{:?}", with_plan.apps),
        "empty plan must not perturb any statistic"
    );
    assert_eq!(base.makespan, with_dog.makespan);
    assert_eq!(
        format!("{:?}", base.apps),
        format!("{:?}", with_dog.apps),
        "an armed watchdog must not perturb a healthy run"
    );
}

#[test]
fn probabilistic_faults_drain_under_conservative_fit() {
    // High fault rates against the admission-gated configuration: the
    // kill path must return admitted totals or later grids starve.
    let dev = DeviceConfig {
        admission: AdmissionPolicy::ConservativeFit,
        ..DeviceConfig::tesla_k20()
    };
    let mut host = HostConfig::deterministic();
    host.watchdog_timeout = Some(Dur::from_ms(5));
    let mut sim = GpuSim::new(dev, host, 3);
    let streams = sim.create_streams(4);
    for i in 0..4u32 {
        sim.add_app(app(&format!("app{i}"), 32, 60), streams[i as usize]);
    }
    sim.set_fault_plan(
        FaultPlan::none()
            .with_rate(FaultKind::KernelFault, 0.4)
            .with_rate(FaultKind::KernelHang, 0.3)
            .with_rate(FaultKind::CopyFail, 0.2)
            .with_seed(1),
    );
    let r = sim.run().expect("faulty run still drains");
    assert_valid(&r);
    assert!(r.faults.injected() > 0, "rates this high must fire: {:?}", r.faults);
}

#[test]
fn faults_on_shared_stream_error_later_apps_ops() {
    // Two apps share one stream; the first app's copy fault poisons the
    // stream, so the second app's ops complete-with-error too (CUDA
    // sticky-error semantics), yet both host threads finish.
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 9);
    let s = sim.create_stream();
    sim.add_app(app("first", 16, 40), s);
    sim.add_app(app("second", 16, 40), s);
    sim.set_fault_plan(FaultPlan::none().with_fault(FaultKind::CopyFail, AppId(0), 0));
    let r = sim.run().expect("both threads finish");
    assert_eq!(r.faults.copy_faults, 1);
    assert_eq!(r.apps[1].kernels_completed, 0, "second app's work errored");
    assert_eq!(
        r.apps[1].outcome,
        AppOutcome::Failed {
            reason: FaultKind::CopyFail
        },
        "the sticky error is visible to the app sharing the stream"
    );
    assert!(r.apps[0].finished.is_some() && r.apps[1].finished.is_some());
}
