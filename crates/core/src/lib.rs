//! # hyperq-core — the Hyper-Q management framework
//!
//! This crate is the paper's primary contribution, reimplemented in
//! Rust against the simulated Kepler device in `hq-gpu`:
//!
//! * [`kernel::Kernel`] — the abstract application interface of
//!   Table II (`allocateHostMemory` … `freeDeviceMemory`); Rodinia
//!   benchmarks plug in through [`kernel::RodiniaApp`] without touching
//!   their kernel code, mirroring the paper's claim of minimal porting
//!   effort.
//! * [`ordering`] — the five application scheduling orders of Fig. 3
//!   (Naïve FIFO, Round-Robin, Random Shuffle, Reverse FIFO, Reverse
//!   Round-Robin).
//! * [`kernel::Memsync`] — the host-side memory-transfer
//!   synchronization of §III-B: a mutex held across each application's
//!   HtoD stage (optionally until the transfers complete) that turns
//!   interleaved copies into pseudo-bursts.
//! * [`harness`] — `StreamManager`-style stream allocation, thread
//!   launch in schedule order, serialized and concurrent execution
//!   modes, and power measurement via `hq-power`'s NVML-like monitor.
//! * [`metrics`] — effective memory transfer latency (`Le`, eq. 2),
//!   improvement-over-serial, and energy accounting.
//! * [`autosched`] — the future-work dynamic scheduler sketched in
//!   §VI: a greedy search over launch orders.
//!
//! # Example
//!
//! ```
//! use hyperq_core::harness::{pair_workload, run_workload, MemsyncMode, RunConfig};
//! use hyperq_core::metrics::improvement;
//! use hq_workloads::apps::AppKind;
//!
//! // Four applications: 2x knearest + 2x needle.
//! let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
//!
//! let serial = run_workload(&RunConfig::serial(), &kinds)?;
//! let concurrent = run_workload(
//!     &RunConfig::concurrent(4).with_memsync(MemsyncMode::Synced),
//!     &kinds,
//! )?;
//!
//! let gain = improvement(serial.makespan(), concurrent.makespan());
//! assert!(gain > 0.10, "Hyper-Q concurrency should win: {gain}");
//! # Ok::<(), hq_gpu::result::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod autosched;
pub mod harness;
pub mod kernel;
pub mod metrics;
pub mod ordering;
pub mod report;
pub mod streams;
pub mod summary;

pub use harness::{run_workload, RunConfig, RunOutcome};
pub use kernel::{build_program, Kernel, Memsync, Recorder, RodiniaApp};
pub use ordering::ScheduleOrder;
