//! Application scheduling orders (paper §III-C, Fig. 3).
//!
//! The queue order is the order in which the framework allocates CUDA
//! streams to applications **and** launches their host threads; with
//! fewer streams than applications it also fixes the serialization
//! dependencies inside each stream's hardware queue. The paper
//! evaluates five orders and shows that different orders are optimal
//! for different application pairings (Figs. 7/8).

use hq_des::rng::DetRng;
use serde::{Deserialize, Serialize};

/// The five scheduling techniques of Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ScheduleOrder {
    /// (a) applications queued type by type, first-in first-out.
    NaiveFifo,
    /// (b) queued by type, launched alternating across types.
    RoundRobin,
    /// (c) a random permutation of the Naïve FIFO queue.
    RandomShuffle,
    /// (d) Naïve FIFO with the type groups' order reversed.
    ReverseFifo,
    /// (e) Round-Robin with the type order reversed.
    ReverseRoundRobin,
}

impl ScheduleOrder {
    /// All five orders, in the paper's presentation order.
    pub const ALL: [ScheduleOrder; 5] = [
        ScheduleOrder::NaiveFifo,
        ScheduleOrder::RoundRobin,
        ScheduleOrder::RandomShuffle,
        ScheduleOrder::ReverseFifo,
        ScheduleOrder::ReverseRoundRobin,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleOrder::NaiveFifo => "Naive FIFO",
            ScheduleOrder::RoundRobin => "Round-Robin",
            ScheduleOrder::RandomShuffle => "Random Shuffle",
            ScheduleOrder::ReverseFifo => "Reverse FIFO",
            ScheduleOrder::ReverseRoundRobin => "Reverse Round-Robin",
        }
    }
}

impl std::fmt::Display for ScheduleOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Produce the launch order for application instances grouped by type
/// (each inner `Vec` is one type's instances, already in instance
/// order). `rng` is consumed only by [`ScheduleOrder::RandomShuffle`].
pub fn schedule<T: Clone>(groups: &[Vec<T>], order: ScheduleOrder, rng: &mut DetRng) -> Vec<T> {
    let interleave = |gs: Vec<&Vec<T>>| -> Vec<T> {
        let mut out = Vec::new();
        let mut idx = 0;
        loop {
            let mut any = false;
            for g in &gs {
                if let Some(item) = g.get(idx) {
                    out.push(item.clone());
                    any = true;
                }
            }
            if !any {
                break;
            }
            idx += 1;
        }
        out
    };
    match order {
        ScheduleOrder::NaiveFifo => groups.iter().flatten().cloned().collect(),
        ScheduleOrder::ReverseFifo => groups.iter().rev().flatten().cloned().collect(),
        ScheduleOrder::RoundRobin => interleave(groups.iter().collect()),
        ScheduleOrder::ReverseRoundRobin => interleave(groups.iter().rev().collect()),
        ScheduleOrder::RandomShuffle => {
            let mut all: Vec<T> = groups.iter().flatten().cloned().collect();
            rng.shuffle(&mut all);
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3 example: m = 4 copies of X, n = 4 copies of Y.
    fn fig3_groups() -> Vec<Vec<String>> {
        let xs = (1..=4).map(|i| format!("X{i}")).collect();
        let ys = (1..=4).map(|i| format!("Y{i}")).collect();
        vec![xs, ys]
    }

    fn run(order: ScheduleOrder) -> Vec<String> {
        schedule(&fig3_groups(), order, &mut DetRng::seed_from_u64(42))
    }

    #[test]
    fn fig3a_naive_fifo() {
        assert_eq!(
            run(ScheduleOrder::NaiveFifo),
            ["X1", "X2", "X3", "X4", "Y1", "Y2", "Y3", "Y4"]
        );
    }

    #[test]
    fn fig3b_round_robin() {
        assert_eq!(
            run(ScheduleOrder::RoundRobin),
            ["X1", "Y1", "X2", "Y2", "X3", "Y3", "X4", "Y4"]
        );
    }

    #[test]
    fn fig3c_random_shuffle_is_permutation() {
        let out = run(ScheduleOrder::RandomShuffle);
        let mut sorted = out.clone();
        sorted.sort();
        let mut expect: Vec<String> = fig3_groups().into_iter().flatten().collect();
        expect.sort();
        assert_eq!(sorted, expect, "same multiset");
        assert_ne!(
            out,
            run(ScheduleOrder::NaiveFifo),
            "a 8-element shuffle at this seed differs from FIFO"
        );
        // Deterministic for a fixed seed.
        assert_eq!(out, run(ScheduleOrder::RandomShuffle));
    }

    #[test]
    fn fig3d_reverse_fifo() {
        assert_eq!(
            run(ScheduleOrder::ReverseFifo),
            ["Y1", "Y2", "Y3", "Y4", "X1", "X2", "X3", "X4"]
        );
    }

    #[test]
    fn fig3e_reverse_round_robin() {
        assert_eq!(
            run(ScheduleOrder::ReverseRoundRobin),
            ["Y1", "X1", "Y2", "X2", "Y3", "X3", "Y4", "X4"]
        );
    }

    #[test]
    fn uneven_groups_round_robin() {
        let groups = vec![vec!["X1", "X2", "X3", "X4"], vec!["Y1", "Y2"]];
        let out = schedule(
            &groups,
            ScheduleOrder::RoundRobin,
            &mut DetRng::seed_from_u64(0),
        );
        assert_eq!(out, ["X1", "Y1", "X2", "Y2", "X3", "X4"]);
    }

    #[test]
    fn single_group_all_orders_sane() {
        let groups = vec![vec![1, 2, 3]];
        for order in ScheduleOrder::ALL {
            let out = schedule(&groups, order, &mut DetRng::seed_from_u64(1));
            let mut sorted = out.clone();
            sorted.sort();
            assert_eq!(sorted, vec![1, 2, 3], "{order}");
        }
    }

    #[test]
    fn empty_groups_produce_empty_schedule() {
        let groups: Vec<Vec<u8>> = vec![vec![], vec![]];
        for order in ScheduleOrder::ALL {
            assert!(schedule(&groups, order, &mut DetRng::seed_from_u64(1)).is_empty());
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = ScheduleOrder::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            names,
            [
                "Naive FIFO",
                "Round-Robin",
                "Random Shuffle",
                "Reverse FIFO",
                "Reverse Round-Robin"
            ]
        );
    }
}
