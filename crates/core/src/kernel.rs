//! The Table II application interface.
//!
//! The paper defines an abstract `Kernel` base class whose virtual
//! methods logically group a benchmark's phases; the test harness talks
//! only to this interface, so new applications slot in "with minimal
//! programming effort" and *without modifying kernel source code*. The
//! Rust rendition is the [`Kernel`] trait plus a [`Recorder`] that the
//! methods write driver calls into; [`build_program`] invokes the
//! methods in the canonical order and assembles the simulator
//! [`Program`], applying the memory-synchronization technique when
//! requested.

use hq_des::time::Dur;
use hq_gpu::kernel::KernelDesc;
use hq_gpu::program::{HostOp, Program};
use hq_gpu::types::{Dir, MutexId};
use hq_workloads::apps::AppKind;
use hq_workloads::{gaussian, knearest, needle, srad};

/// Memory-transfer synchronization mode (paper §III-B).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Memsync {
    /// Default CUDA behaviour: transfers from concurrent applications
    /// interleave in the copy queue (Fig. 1).
    Off,
    /// Hold a mutex across each HtoD stage, releasing after the
    /// *enqueues* (burst issue, but the engine may still interleave).
    Enqueue(MutexId),
    /// Hold the mutex until the stage's transfers have *completed*
    /// (a `cudaStreamSynchronize` before the unlock) — the paper's
    /// pseudo-burst mechanism (Fig. 2).
    Synced(MutexId),
}

/// Records the driver calls an application's phases emit.
#[derive(Debug, Default)]
pub struct Recorder {
    ops: Vec<HostOp>,
    device_bytes: u64,
    host_bytes: u64,
    /// Half-open op-index ranges marking HtoD transfer stages.
    stages: Vec<(usize, usize)>,
    open_stage: Option<usize>,
}

impl Recorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a `cudaMallocHost` (bookkeeping only; allocation happens
    /// before the timed region, as in the paper's harness).
    pub fn host_alloc(&mut self, bytes: u64) {
        self.host_bytes += bytes;
    }

    /// Record a `cudaMalloc` (checked against device capacity at run
    /// start).
    pub fn device_alloc(&mut self, bytes: u64) {
        self.device_bytes += bytes;
    }

    /// Emit an HtoD `cudaMemcpyAsync`.
    pub fn htod(&mut self, bytes: u64, label: impl Into<String>) {
        self.ops.push(HostOp::MemcpyAsync {
            dir: Dir::HtoD,
            bytes,
            label: label.into(),
        });
    }

    /// Emit a DtoH `cudaMemcpyAsync`.
    pub fn dtoh(&mut self, bytes: u64, label: impl Into<String>) {
        self.ops.push(HostOp::MemcpyAsync {
            dir: Dir::DtoH,
            bytes,
            label: label.into(),
        });
    }

    /// Emit a kernel launch.
    pub fn launch(&mut self, kernel: KernelDesc) {
        self.ops.push(HostOp::LaunchKernel { kernel });
    }

    /// Emit host-side computation.
    pub fn host_work(&mut self, dur: Dur) {
        self.ops.push(HostOp::HostWork { dur });
    }

    /// Emit a `cudaStreamSynchronize`.
    pub fn sync(&mut self) {
        self.ops.push(HostOp::StreamSync);
    }

    /// Mark the HtoD calls emitted by `f` as one transfer *stage* — the
    /// unit the memory-synchronization mutex wraps.
    pub fn htod_stage(&mut self, f: impl FnOnce(&mut Self)) {
        assert!(self.open_stage.is_none(), "nested HtoD stages");
        let start = self.ops.len();
        self.open_stage = Some(start);
        f(self);
        let end = self.ops.len();
        self.open_stage = None;
        if end > start {
            self.stages.push((start, end));
        }
    }

    /// Assemble the final [`Program`], wrapping each marked HtoD stage
    /// per the requested [`Memsync`] mode and appending the trailing
    /// stream synchronize every application ends with.
    pub fn finish(mut self, label: String, memsync: Memsync) -> Program {
        if let Memsync::Enqueue(m) | Memsync::Synced(m) = memsync {
            let synced = matches!(memsync, Memsync::Synced(_));
            // Splice lock/unlock around each stage, back to front so
            // earlier recorded ranges stay valid.
            for &(start, end) in self.stages.iter().rev() {
                if synced {
                    self.ops.insert(end, HostOp::MutexUnlock(m));
                    self.ops.insert(end, HostOp::StreamSync);
                } else {
                    self.ops.insert(end, HostOp::MutexUnlock(m));
                }
                self.ops.insert(start, HostOp::MutexLock(m));
            }
        }
        if !matches!(self.ops.last(), Some(HostOp::StreamSync)) {
            self.ops.push(HostOp::StreamSync);
        }
        Program {
            label,
            ops: self.ops,
            device_bytes: self.device_bytes,
        }
    }
}

/// The abstract application interface (Table II).
///
/// Methods are invoked by [`build_program`] in the order the paper's
/// harness calls them; each emits its phase's driver calls into the
/// [`Recorder`]. Allocation/free methods do bookkeeping only — in the
/// paper the parent thread performs them outside the measured region.
pub trait Kernel {
    /// Application label, e.g. `gaussian#3`.
    fn label(&self) -> String;
    /// Encapsulates `cudaMallocHost` calls.
    fn allocate_host_memory(&self, rec: &mut Recorder);
    /// Encapsulates `cudaMalloc` calls.
    fn allocate_device_memory(&self, rec: &mut Recorder);
    /// Encapsulates loading / initializing host data.
    fn initialize_host_memory(&self, rec: &mut Recorder);
    /// Encapsulates the leading HtoD `cudaMemcpyAsync` stage.
    fn transfer_memory_in(&self, rec: &mut Recorder);
    /// Encapsulates grid/block setup and kernel launches (including any
    /// transfers the benchmark performs inside its iteration loop).
    fn execute_kernel(&self, rec: &mut Recorder);
    /// Encapsulates the trailing DtoH `cudaMemcpyAsync` stage.
    fn transfer_memory_out(&self, rec: &mut Recorder);
    /// Encapsulates `cudaFreeHost` calls.
    fn free_host_memory(&self, rec: &mut Recorder) {
        let _ = rec;
    }
    /// Encapsulates `cudaFree` calls.
    fn free_device_memory(&self, rec: &mut Recorder) {
        let _ = rec;
    }
}

/// Drive a [`Kernel`]'s methods in the canonical order and build the
/// simulator program, with the HtoD stage(s) wrapped per `memsync`.
pub fn build_program(kernel: &dyn Kernel, memsync: Memsync) -> Program {
    let mut rec = Recorder::new();
    kernel.allocate_host_memory(&mut rec);
    kernel.allocate_device_memory(&mut rec);
    kernel.initialize_host_memory(&mut rec);
    rec.htod_stage(|r| kernel.transfer_memory_in(r));
    kernel.execute_kernel(&mut rec);
    kernel.transfer_memory_out(&mut rec);
    kernel.free_host_memory(&mut rec);
    kernel.free_device_memory(&mut rec);
    rec.finish(kernel.label(), memsync)
}

/// A ported Rodinia benchmark behind the [`Kernel`] interface, at the
/// paper's default problem sizes (Table III).
#[derive(Clone, Copy, Debug)]
pub struct RodiniaApp {
    /// Which benchmark.
    pub kind: AppKind,
    /// Instance number (for labelling).
    pub instance: usize,
}

impl RodiniaApp {
    /// New instance of a benchmark.
    pub fn new(kind: AppKind, instance: usize) -> Self {
        RodiniaApp { kind, instance }
    }
}

impl Kernel for RodiniaApp {
    fn label(&self) -> String {
        format!("{}#{}", self.kind.name(), self.instance)
    }

    fn allocate_host_memory(&self, rec: &mut Recorder) {
        // Mirror each benchmark's pinned host footprint.
        let bytes = match self.kind {
            AppKind::Gaussian => 2 * 512 * 512 * 4 + 2 * 512 * 4,
            AppKind::Needle => 2 * 513 * 513 * 4,
            AppKind::Srad => 512 * 512 * 4,
            AppKind::Knearest => 42_764 * (8 + 4),
        };
        rec.host_alloc(bytes);
    }

    fn allocate_device_memory(&self, rec: &mut Recorder) {
        let bytes = match self.kind {
            AppKind::Gaussian => 2 * 512 * 512 * 4 + 2 * 512 * 4,
            AppKind::Needle => 2 * 513 * 513 * 4,
            AppKind::Srad => 6 * 512 * 512 * 4,
            AppKind::Knearest => 42_764 * (8 + 4),
        };
        rec.device_alloc(bytes);
    }

    fn initialize_host_memory(&self, _rec: &mut Recorder) {
        // Input generation happens before the timed region.
    }

    fn transfer_memory_in(&self, rec: &mut Recorder) {
        match self.kind {
            AppKind::Gaussian => {
                rec.htod(512 * 512 * 4, "a");
                rec.htod(512 * 4, "b");
                rec.htod(512 * 512 * 4, "m");
            }
            AppKind::Needle => {
                rec.htod(513 * 513 * 4, "reference");
                rec.htod(513 * 513 * 4, "input_itemsets");
            }
            AppKind::Srad => {
                // srad_v2 transfers inside its iteration loop (see
                // execute_kernel); no leading stage.
            }
            AppKind::Knearest => {
                rec.htod(42_764 * 8, "records");
            }
        }
    }

    fn execute_kernel(&self, rec: &mut Recorder) {
        match self.kind {
            AppKind::Gaussian => {
                for _ in 0..511 {
                    rec.launch(gaussian::fan1_kernel(512));
                    rec.launch(gaussian::fan2_kernel(512));
                }
            }
            AppKind::Needle => {
                for i in 1..=16 {
                    rec.launch(needle::shared1_kernel(i));
                }
                for i in (1..16).rev() {
                    rec.launch(needle::shared2_kernel(i));
                }
            }
            AppKind::Srad => {
                let img = (512 * 512 * 4) as u64;
                for _ in 0..10 {
                    rec.host_work(Dur::from_ns(512 * 512 / 4));
                    rec.htod_stage(|r| r.htod(img, "J"));
                    rec.launch(srad::srad1_kernel(512, 512));
                    rec.launch(srad::srad2_kernel(512, 512));
                    rec.dtoh(img, "J");
                }
            }
            AppKind::Knearest => {
                rec.launch(knearest::euclid_kernel(42_764));
            }
        }
    }

    fn transfer_memory_out(&self, rec: &mut Recorder) {
        match self.kind {
            AppKind::Gaussian => {
                rec.dtoh(512 * 512 * 4, "a");
                rec.dtoh(512 * 4, "b");
            }
            AppKind::Needle => {
                rec.dtoh(513 * 513 * 4, "input_itemsets");
            }
            AppKind::Srad => {
                // Final image already downloaded by the last iteration.
            }
            AppKind::Knearest => {
                rec.dtoh(42_764 * 4, "distances");
                rec.host_work(Dur::from_ns(42_764 / 2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rodinia_apps_match_workloads_programs() {
        // The trait-built programs must emit exactly the op sequence of
        // the standalone workload builders (the independent spec).
        for kind in AppKind::ALL {
            let via_trait = build_program(&RodiniaApp::new(kind, 2), Memsync::Off);
            let direct = kind.program(2);
            assert_eq!(via_trait.label, direct.label);
            assert_eq!(via_trait.device_bytes, direct.device_bytes, "{kind}");
            assert_eq!(via_trait.ops, direct.ops, "{kind} op sequence");
        }
    }

    #[test]
    fn memsync_wraps_leading_stage() {
        let m = MutexId(0);
        let p = build_program(&RodiniaApp::new(AppKind::Gaussian, 0), Memsync::Synced(m));
        assert!(matches!(p.ops[0], HostOp::MutexLock(id) if id == m));
        // lock, 3 htod, sync, unlock
        assert!(matches!(p.ops[4], HostOp::StreamSync));
        assert!(matches!(p.ops[5], HostOp::MutexUnlock(id) if id == m));
    }

    #[test]
    fn memsync_enqueue_skips_inner_sync() {
        let m = MutexId(0);
        let p = build_program(&RodiniaApp::new(AppKind::Needle, 0), Memsync::Enqueue(m));
        assert!(matches!(p.ops[0], HostOp::MutexLock(_)));
        // lock, 2 htod, unlock (no sync before unlock)
        assert!(matches!(p.ops[3], HostOp::MutexUnlock(_)));
    }

    #[test]
    fn memsync_wraps_each_srad_iteration() {
        let m = MutexId(3);
        let p = build_program(&RodiniaApp::new(AppKind::Srad, 0), Memsync::Synced(m));
        let locks = p
            .ops
            .iter()
            .filter(|o| matches!(o, HostOp::MutexLock(_)))
            .count();
        let unlocks = p
            .ops
            .iter()
            .filter(|o| matches!(o, HostOp::MutexUnlock(_)))
            .count();
        assert_eq!(locks, 10, "one stage per srad iteration");
        assert_eq!(locks, unlocks);
    }

    #[test]
    fn memsync_off_adds_no_mutex_ops() {
        for kind in AppKind::ALL {
            let p = build_program(&RodiniaApp::new(kind, 0), Memsync::Off);
            assert!(!p
                .ops
                .iter()
                .any(|o| matches!(o, HostOp::MutexLock(_) | HostOp::MutexUnlock(_))));
        }
    }

    #[test]
    fn recorder_stage_tracking() {
        let mut rec = Recorder::new();
        rec.htod_stage(|r| {
            r.htod(10, "x");
            r.htod(20, "y");
        });
        rec.launch(gaussian::fan1_kernel(512));
        let p = rec.finish("t".into(), Memsync::Synced(MutexId(1)));
        let kinds: Vec<&'static str> = p
            .ops
            .iter()
            .map(|o| match o {
                HostOp::MutexLock(_) => "lock",
                HostOp::MemcpyAsync { .. } => "copy",
                HostOp::StreamSync => "sync",
                HostOp::MutexUnlock(_) => "unlock",
                HostOp::LaunchKernel { .. } => "launch",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["lock", "copy", "copy", "sync", "unlock", "launch", "sync"]
        );
    }

    #[test]
    fn empty_stage_is_not_wrapped() {
        let mut rec = Recorder::new();
        rec.htod_stage(|_| {});
        rec.launch(gaussian::fan1_kernel(512));
        let p = rec.finish("t".into(), Memsync::Synced(MutexId(0)));
        assert!(!p.ops.iter().any(|o| matches!(o, HostOp::MutexLock(_))));
    }
}
