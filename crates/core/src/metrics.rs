//! Evaluation metrics: improvement over serial, effective memory
//! transfer latency expectations, energy deltas.

use crate::harness::{homogeneous_workload, run_workload, RunConfig};
use hq_des::time::Dur;
use hq_gpu::types::Dir;
use hq_workloads::apps::AppKind;

/// Fractional improvement of `improved` over `baseline`
/// (`(baseline − improved) / baseline`; negative when slower). This is
/// the paper's "performance improvement relative to serialized
/// execution".
pub fn improvement(baseline: Dur, improved: Dur) -> f64 {
    if baseline.is_zero() {
        return 0.0;
    }
    (baseline.as_ns() as f64 - improved.as_ns() as f64) / baseline.as_ns() as f64
}

/// Fractional reduction of a scalar metric (energy, power).
pub fn reduction(baseline: f64, improved: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    (baseline - improved) / baseline
}

/// The paper's *expected* effective memory transfer latency for one
/// application type (§V-B): the per-application HtoD latency measured
/// in a homogeneous, uncontended run.
pub fn expected_le(kind: AppKind, cfg: &RunConfig) -> Dur {
    let mut solo = cfg.clone();
    solo.num_streams = 1;
    solo.serialize = false;
    solo.trace = false;
    let out =
        run_workload(&solo, &homogeneous_workload(kind, 1)).expect("solo run cannot deadlock");
    out.mean_le(Dir::HtoD).unwrap_or(Dur::ZERO)
}

/// Expected `Le` for a heterogeneous pair: the mean of the two types'
/// homogeneous expectations (paper §V-B).
pub fn expected_pair_le(x: AppKind, y: AppKind, cfg: &RunConfig) -> Dur {
    let a = expected_le(x, cfg);
    let b = expected_le(y, cfg);
    Dur::from_ns((a.as_ns() + b.as_ns()) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert!((improvement(Dur::from_ns(100), Dur::from_ns(75)) - 0.25).abs() < 1e-12);
        assert!(improvement(Dur::from_ns(100), Dur::from_ns(120)) < 0.0);
        assert_eq!(improvement(Dur::ZERO, Dur::from_ns(5)), 0.0);
    }

    #[test]
    fn reduction_math() {
        assert!((reduction(200.0, 150.0) - 0.25).abs() < 1e-12);
        assert_eq!(reduction(0.0, 5.0), 0.0);
    }

    #[test]
    fn expected_le_positive_for_transfer_apps() {
        let cfg = RunConfig::concurrent(1);
        let le = expected_le(AppKind::Needle, &cfg);
        assert!(le.as_ns() > 0);
        // Two ~1 MB transfers at ~6 GB/s: hundreds of microseconds.
        assert!(le > Dur::from_us(100), "needle Le {le}");
        assert!(le < Dur::from_ms(5), "needle Le {le}");
    }

    #[test]
    fn expected_pair_le_is_mean() {
        let cfg = RunConfig::concurrent(1);
        let a = expected_le(AppKind::Needle, &cfg);
        let b = expected_le(AppKind::Knearest, &cfg);
        let pair = expected_pair_le(AppKind::Needle, AppKind::Knearest, &cfg);
        assert_eq!(pair.as_ns(), (a.as_ns() + b.as_ns()) / 2);
    }
}
