//! The run harness: stream management, thread launch, measurement.
//!
//! Mirrors the paper's test-harness execution flow (§IV): instantiate a
//! class object per application, start the power monitor, launch each
//! application on its own child thread (in schedule order, which is
//! also stream-allocation order), join, and report. Serialized
//! baselines chain thread starts so exactly one application runs at a
//! time on a single stream.

use crate::kernel::{build_program, Kernel, Memsync, RodiniaApp};
use crate::ordering::{schedule, ScheduleOrder};
use hq_des::rng::DetRng;
use hq_des::time::{Dur, SimTime};
use hq_gpu::prelude::*;
use hq_power::{PowerModel, PowerMonitor, PowerReport};
use hq_workloads::apps::AppKind;
use serde::{Deserialize, Serialize};

/// Memory-synchronization technique selection (mutex ids are created
/// internally by the harness).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MemsyncMode {
    /// Default CUDA behaviour.
    Off,
    /// Mutex released right after the enqueues.
    Enqueue,
    /// Mutex held until the stage's transfers complete (the paper's
    /// mechanism).
    Synced,
}

/// What the harness does about applications that fail from injected
/// faults (see [`FaultPlan`]).
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Report failures as-is; the workload's other applications still
    /// run to completion.
    #[default]
    FailFast,
    /// Re-run each failed application alone on a fresh stream after a
    /// simulated exponential backoff; its scripted faults are treated as
    /// transient (consumed by the first attempt) while probabilistic
    /// rates keep applying with a re-derived seed.
    Retry {
        /// Maximum re-runs per failed application.
        max_attempts: u32,
        /// Backoff before attempt `n` is `backoff * 2^(n-1)`.
        backoff: Dur,
    },
    /// Re-run the whole workload in degraded mode — serialized on a
    /// single stream through a single hardware work queue (Fermi-style)
    /// — trading all concurrency for isolation.
    Degrade,
}

/// Watchdog armed automatically whenever a non-empty fault plan is
/// installed and the host config leaves the timeout unset: long enough
/// that no Rodinia-scale kernel trips it, short enough that a hung grid
/// is reclaimed within one power-sampling period-scale delay.
pub const DEFAULT_WATCHDOG: Dur = Dur::from_ms(50);

/// Full configuration of one harness run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Device model.
    pub device: DeviceConfig,
    /// Host timing model.
    pub host: HostConfig,
    /// Number of CUDA streams (`NS`); applications are assigned
    /// round-robin in schedule order.
    pub num_streams: u32,
    /// Launch order policy.
    pub order: ScheduleOrder,
    /// Memory-transfer synchronization.
    pub memsync: MemsyncMode,
    /// Fully serialized baseline: one stream, threads chained so one
    /// application runs at a time.
    pub serialize: bool,
    /// Simulation seed (jitter + random shuffle).
    pub seed: u64,
    /// Record timeline spans (disable for sweeps).
    pub trace: bool,
    /// Board power model.
    pub power: PowerModel,
    /// Power sensor period.
    pub sample_period: Dur,
    /// Fault plan injected into the run (empty = no faults, and the
    /// run is bit-identical to a harness without the fault layer).
    pub faults: FaultPlan,
    /// What to do about applications the faults kill.
    pub recovery: RecoveryPolicy,
}

impl RunConfig {
    /// Concurrent run on `num_streams` streams, Naïve FIFO, no memsync.
    pub fn concurrent(num_streams: u32) -> Self {
        RunConfig {
            device: DeviceConfig::tesla_k20(),
            host: HostConfig::default(),
            num_streams,
            order: ScheduleOrder::NaiveFifo,
            memsync: MemsyncMode::Off,
            serialize: false,
            seed: 0xC0FFEE,
            trace: false,
            power: PowerModel::tesla_k20(),
            sample_period: Dur::from_ms(15),
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::FailFast,
        }
    }

    /// The paper's serialized baseline.
    pub fn serial() -> Self {
        RunConfig {
            num_streams: 1,
            serialize: true,
            ..Self::concurrent(1)
        }
    }

    /// Builder-style order override.
    pub fn with_order(mut self, order: ScheduleOrder) -> Self {
        self.order = order;
        self
    }

    /// Builder-style memsync override.
    pub fn with_memsync(mut self, memsync: MemsyncMode) -> Self {
        self.memsync = memsync;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style trace toggle.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style fault plan override.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style recovery policy override.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }
}

/// One scheduled application instance.
pub type AppSpec = (AppKind, usize);

/// Everything measured in one harness run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Launch order actually used (labels, in order).
    pub schedule: Vec<String>,
    /// Raw simulation output.
    pub result: SimResult,
    /// Power/energy measurement.
    pub power: PowerReport,
    /// Retry attempts spent recovering failed applications.
    pub retries: u32,
    /// True when the Degrade policy re-ran the workload serialized.
    pub degraded: bool,
}

impl RunOutcome {
    /// Total wall time of the workload.
    pub fn makespan(&self) -> Dur {
        self.result.makespan - SimTime::ZERO
    }

    /// Total GPU energy in Joules.
    pub fn energy_j(&self) -> f64 {
        self.power.energy_j
    }

    /// Time-weighted average power in Watts.
    pub fn avg_power_w(&self) -> f64 {
        self.power.avg_true_w
    }

    /// Mean effective memory transfer latency across applications.
    pub fn mean_le(&self, dir: Dir) -> Option<Dur> {
        self.result.mean_effective_latency(dir)
    }
}

/// Build the per-type instance groups and apply the scheduling order.
pub fn build_schedule(kinds: &[AppKind], order: ScheduleOrder, seed: u64) -> Vec<AppSpec> {
    // Group by type in first-appearance order, numbering instances
    // within each type.
    let mut type_order: Vec<AppKind> = Vec::new();
    for &k in kinds {
        if !type_order.contains(&k) {
            type_order.push(k);
        }
    }
    let groups: Vec<Vec<AppSpec>> = type_order
        .iter()
        .map(|&t| {
            (0..kinds.iter().filter(|&&k| k == t).count())
                .map(|i| (t, i))
                .collect()
        })
        .collect();
    let mut rng = DetRng::seed_from_u64(seed).fork(0x0bde7);
    schedule(&groups, order, &mut rng)
}

/// Run an explicit schedule (used by the dynamic scheduler, which
/// searches orders directly) and apply the configured recovery policy
/// to any fault-killed application.
pub fn run_schedule(cfg: &RunConfig, specs: &[AppSpec]) -> Result<RunOutcome, SimError> {
    let mut out = run_schedule_once(cfg, specs, &cfg.faults, cfg.seed)?;
    let any_failed = out.result.apps.iter().any(|a| a.outcome.is_failed());
    if !cfg.faults.is_empty() && any_failed {
        apply_recovery(cfg, specs, &mut out)?;
        out.power = PowerMonitor::with_period(cfg.power, cfg.sample_period).measure(&out.result);
    }
    Ok(out)
}

/// One simulation pass, no recovery. With a non-empty `plan` and no
/// explicit watchdog timeout, [`DEFAULT_WATCHDOG`] is armed so injected
/// hangs cannot wedge the run.
fn run_schedule_once(
    cfg: &RunConfig,
    specs: &[AppSpec],
    plan: &FaultPlan,
    seed: u64,
) -> Result<RunOutcome, SimError> {
    let (sim, labels) = build_run(cfg, specs, plan, seed);
    let result = sim.run()?;
    let power = PowerMonitor::with_period(cfg.power, cfg.sample_period).measure(&result);
    Ok(RunOutcome {
        schedule: labels,
        result,
        power,
        retries: 0,
        degraded: false,
    })
}

/// Assemble (but do not run) the simulator for one schedule: streams,
/// memsync mutexes, compiled applications, fault plan, optional
/// auditor. Shared verbatim by the serial path and
/// [`run_schedule_batch`], which is what keeps batched lanes
/// byte-identical to serial runs.
fn build_run(
    cfg: &RunConfig,
    specs: &[AppSpec],
    plan: &FaultPlan,
    seed: u64,
) -> (GpuSim, Vec<String>) {
    let num_streams = if cfg.serialize { 1 } else { cfg.num_streams };
    let mut host = cfg.host;
    if !plan.is_empty() && host.watchdog_timeout.is_none() {
        host.watchdog_timeout = Some(DEFAULT_WATCHDOG);
    }
    let mut sim = GpuSim::with_trace(cfg.device.clone(), host, seed, cfg.trace);
    // `HQ_AUDIT=1` arms the online invariant auditor for every harness
    // run; the auditor is a pure observer, so audited results (and all
    // artifacts derived from them) must stay byte-identical to
    // unaudited ones — the suite determinism test relies on this.
    if std::env::var("HQ_AUDIT").map(|v| v == "1").unwrap_or(false) {
        sim.enable_audit();
    }
    sim.set_fault_plan(plan.clone());
    let mut streams = crate::streams::StreamManager::create(&mut sim, num_streams);
    let memsync = match cfg.memsync {
        MemsyncMode::Off => Memsync::Off,
        MemsyncMode::Enqueue => Memsync::Enqueue(sim.create_mutex()),
        MemsyncMode::Synced => Memsync::Synced(sim.create_mutex()),
    };
    let mut labels = Vec::with_capacity(specs.len());
    let mut prev: Option<AppId> = None;
    for &(kind, instance) in specs.iter() {
        let app = RodiniaApp::new(kind, instance);
        labels.push(Kernel::label(&app));
        let program = build_program(&app, memsync);
        let id = sim.add_app(program, streams.acquire());
        if cfg.serialize {
            if let Some(p) = prev {
                sim.set_start_after(id, p);
            }
            prev = Some(id);
        }
    }
    (sim, labels)
}

/// Run many schedules as lanes of one merged event loop (see
/// `hq_gpu::sim::run_batch`): one shared K-lane queue, each lane an
/// independent simulator built by the same [`build_run`] the serial
/// path uses. Recovery re-runs happen serially per lane afterwards
/// (they are rare fault-path follow-ups, not the hot path). Output is
/// element-for-element identical to calling [`run_schedule`] on each
/// job in order.
pub fn run_schedule_batch(jobs: &[(RunConfig, Vec<AppSpec>)]) -> Vec<Result<RunOutcome, SimError>> {
    let mut sims = Vec::with_capacity(jobs.len());
    let mut labels = Vec::with_capacity(jobs.len());
    for (cfg, specs) in jobs {
        let (sim, l) = build_run(cfg, specs, &cfg.faults, cfg.seed);
        sims.push(sim);
        labels.push(l);
    }
    let batch = run_batch(sims);
    batch
        .results
        .into_iter()
        .zip(labels)
        .zip(jobs)
        .map(|((res, schedule), (cfg, specs))| {
            let result = res?;
            let power =
                PowerMonitor::with_period(cfg.power, cfg.sample_period).measure(&result);
            let mut out = RunOutcome {
                schedule,
                result,
                power,
                retries: 0,
                degraded: false,
            };
            let any_failed = out.result.apps.iter().any(|a| a.outcome.is_failed());
            if !cfg.faults.is_empty() && any_failed {
                apply_recovery(cfg, specs, &mut out)?;
                out.power =
                    PowerMonitor::with_period(cfg.power, cfg.sample_period).measure(&out.result);
            }
            Ok(out)
        })
        .collect()
}

/// The fault plan a recovery re-run sees: scripted faults are transient
/// (consumed by the primary attempt) while probabilistic rates keep
/// applying with a seed re-derived per attempt, so a retry can fail
/// again under a hostile environment.
fn retry_plan(plan: &FaultPlan, attempt: u32) -> FaultPlan {
    let mut p = plan.clone();
    p.scripted.clear();
    p.seed ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(attempt as u64);
    p
}

/// Exponential backoff before retry attempt `n` (1-based).
fn backoff_delay(backoff: Dur, attempt: u32) -> Dur {
    let shift = (attempt - 1).min(20);
    Dur::from_ns(backoff.as_ns().saturating_mul(1u64 << shift))
}

fn apply_recovery(cfg: &RunConfig, specs: &[AppSpec], out: &mut RunOutcome) -> Result<(), SimError> {
    match cfg.recovery {
        RecoveryPolicy::FailFast => Ok(()),
        RecoveryPolicy::Retry {
            max_attempts,
            backoff,
        } => retry_failed_apps(cfg, specs, out, max_attempts, backoff),
        RecoveryPolicy::Degrade => degrade(cfg, specs, out),
    }
}

/// Re-run each failed application alone on a fresh stream, stacking the
/// re-runs after the primary makespan with exponential backoff between
/// attempts. A recovered application's stats are grafted back into the
/// outcome (time-shifted) and marked [`AppOutcome::Retried`].
fn retry_failed_apps(
    cfg: &RunConfig,
    specs: &[AppSpec],
    out: &mut RunOutcome,
    max_attempts: u32,
    backoff: Dur,
) -> Result<(), SimError> {
    let failed: Vec<usize> = out
        .result
        .apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.outcome.is_failed())
        .map(|(i, _)| i)
        .collect();
    let solo_cfg = RunConfig {
        num_streams: 1,
        serialize: false,
        trace: false,
        recovery: RecoveryPolicy::FailFast,
        ..cfg.clone()
    };
    for idx in failed {
        for attempt in 1..=max_attempts {
            out.retries += 1;
            let offset = (out.result.makespan - SimTime::ZERO) + backoff_delay(backoff, attempt);
            let plan = retry_plan(&cfg.faults, attempt);
            let seed = cfg.seed.wrapping_add(attempt as u64).wrapping_add(idx as u64);
            let solo = run_schedule_once(&solo_cfg, &specs[idx..idx + 1], &plan, seed)?;
            out.result.faults.absorb(&solo.result.faults);
            let mut st = solo.result.apps.into_iter().next().expect("one app ran");
            st.shift(offset);
            let end = SimTime::ZERO + offset + (solo.result.makespan - SimTime::ZERO);
            out.result.makespan = out.result.makespan.max(end);
            if !st.outcome.is_failed() {
                let prior = &out.result.apps[idx];
                st.app = prior.app;
                st.stream = prior.stream;
                st.faults += prior.faults;
                st.outcome = AppOutcome::Retried { attempts: attempt };
                out.result.apps[idx] = st;
                break;
            }
        }
    }
    Ok(())
}

/// Re-run the whole workload serialized through a single hardware work
/// queue (Fermi-style degraded mode), appended after the failed primary
/// attempt on the timeline.
fn degrade(cfg: &RunConfig, specs: &[AppSpec], out: &mut RunOutcome) -> Result<(), SimError> {
    let mut dcfg = cfg.clone();
    dcfg.serialize = true;
    dcfg.num_streams = 1;
    dcfg.device.hw_queues = 1;
    dcfg.recovery = RecoveryPolicy::FailFast;
    let plan = retry_plan(&cfg.faults, 1);
    let seed = cfg.seed.wrapping_add(1);
    let mut rerun = run_schedule_once(&dcfg, specs, &plan, seed)?;
    let offset = out.result.makespan - SimTime::ZERO;
    for st in &mut rerun.result.apps {
        st.shift(offset);
    }
    rerun.result.makespan = SimTime::ZERO + offset + (rerun.result.makespan - SimTime::ZERO);
    rerun.result.faults.absorb(&out.result.faults);
    rerun.degraded = true;
    rerun.retries = out.retries;
    *out = rerun; // run_schedule re-measures power on the merged result
    Ok(())
}

/// Schedule `kinds` under the configured order and run.
pub fn run_workload(cfg: &RunConfig, kinds: &[AppKind]) -> Result<RunOutcome, SimError> {
    let specs = build_schedule(kinds, cfg.order, cfg.seed);
    run_schedule(cfg, &specs)
}

/// The paper's heterogeneous workload: `total` applications evenly
/// split between two types (§IV).
pub fn pair_workload(x: AppKind, y: AppKind, total: usize) -> Vec<AppKind> {
    let m = total / 2;
    let mut kinds = vec![x; m];
    kinds.extend(vec![y; total - m]);
    kinds
}

/// A homogeneous workload of `n` copies of one type.
pub fn homogeneous_workload(kind: AppKind, n: usize) -> Vec<AppKind> {
    vec![kind; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_workload_splits_evenly() {
        let w = pair_workload(AppKind::Gaussian, AppKind::Needle, 8);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Gaussian).count(), 4);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Needle).count(), 4);
        let w = pair_workload(AppKind::Gaussian, AppKind::Needle, 5);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Needle).count(), 3);
    }

    #[test]
    fn build_schedule_round_robin_instances() {
        let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 6);
        let specs = build_schedule(&kinds, ScheduleOrder::RoundRobin, 1);
        assert_eq!(
            specs,
            vec![
                (AppKind::Needle, 0),
                (AppKind::Knearest, 0),
                (AppKind::Needle, 1),
                (AppKind::Knearest, 1),
                (AppKind::Needle, 2),
                (AppKind::Knearest, 2),
            ]
        );
    }

    #[test]
    fn serial_run_executes_one_at_a_time() {
        let cfg = RunConfig::serial().with_trace(true);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let out = run_workload(&cfg, &kinds).unwrap();
        assert_eq!(out.result.apps.len(), 4);
        // Threads ran disjointly: each app starts after the previous
        // one finished.
        let mut spans: Vec<(SimTime, SimTime)> = out
            .result
            .apps
            .iter()
            .map(|a| (a.started.unwrap(), a.finished.unwrap()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "serial apps must not overlap");
        }
    }

    #[test]
    fn concurrent_beats_serial_for_small_apps() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 8);
        let serial = run_workload(&RunConfig::serial(), &kinds).unwrap();
        let conc = run_workload(&RunConfig::concurrent(8), &kinds).unwrap();
        assert!(
            conc.makespan() < serial.makespan(),
            "concurrent {} !< serial {}",
            conc.makespan(),
            serial.makespan()
        );
    }

    #[test]
    fn memsync_reduces_effective_latency() {
        let kinds = pair_workload(AppKind::Gaussian, AppKind::Needle, 8);
        let base = run_workload(&RunConfig::concurrent(8), &kinds).unwrap();
        let synced = run_workload(
            &RunConfig::concurrent(8).with_memsync(MemsyncMode::Synced),
            &kinds,
        )
        .unwrap();
        let le_base = base.mean_le(Dir::HtoD).unwrap();
        let le_sync = synced.mean_le(Dir::HtoD).unwrap();
        assert!(
            le_sync < le_base,
            "memsync must cut Le: {le_sync} !< {le_base}"
        );
    }

    #[test]
    fn schedule_labels_match_order() {
        let cfg = RunConfig::concurrent(4).with_order(ScheduleOrder::ReverseRoundRobin);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let out = run_workload(&cfg, &kinds).unwrap();
        assert_eq!(
            out.schedule,
            vec!["needle#0", "knearest#0", "needle#1", "knearest#1"]
        );
    }

    #[test]
    fn failfast_surfaces_failure_retry_recovers_it() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        // Scripted kernel fault against app 1; everything else healthy.
        let faulty = RunConfig::concurrent(4)
            .with_faults(FaultPlan::none().with_fault(FaultKind::KernelFault, AppId(1), 0));

        let ff = run_workload(&faulty, &kinds).unwrap();
        assert_eq!(ff.retries, 0);
        assert!(!ff.degraded);
        assert_eq!(
            ff.result.apps[1].outcome,
            AppOutcome::Failed {
                reason: FaultKind::KernelFault
            },
            "FailFast must surface the failure"
        );
        hq_gpu::validate::assert_valid(&ff.result);

        let retried = run_workload(
            &faulty.clone().with_recovery(RecoveryPolicy::Retry {
                max_attempts: 2,
                backoff: Dur::from_us(100),
            }),
            &kinds,
        )
        .unwrap();
        assert_eq!(retried.retries, 1, "one attempt recovers a transient fault");
        assert_eq!(
            retried.result.apps[1].outcome,
            AppOutcome::Retried { attempts: 1 }
        );
        assert!(
            retried.makespan() > ff.makespan(),
            "the retry extends the timeline"
        );
        // The recovered app's re-run sits after the primary makespan.
        assert!(retried.result.apps[1].started.unwrap() >= ff.result.makespan);
        hq_gpu::validate::assert_valid(&retried.result);
    }

    #[test]
    fn degrade_reruns_whole_workload_serialized() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let faulty = RunConfig::concurrent(4)
            .with_faults(FaultPlan::none().with_fault(FaultKind::KernelFault, AppId(1), 0))
            .with_recovery(RecoveryPolicy::Degrade);
        let out = run_workload(&faulty, &kinds).unwrap();
        assert!(out.degraded);
        for a in &out.result.apps {
            assert_eq!(
                a.outcome,
                AppOutcome::Completed,
                "{}: degraded serialized re-run completes everything",
                a.label
            );
        }
        hq_gpu::validate::assert_valid(&out.result);
    }

    #[test]
    fn fault_free_run_is_bit_identical_under_any_recovery_policy() {
        let kinds = pair_workload(AppKind::Gaussian, AppKind::Needle, 6);
        let base = run_workload(&RunConfig::concurrent(6), &kinds).unwrap();
        for policy in [
            RecoveryPolicy::FailFast,
            RecoveryPolicy::Retry {
                max_attempts: 3,
                backoff: Dur::from_us(50),
            },
            RecoveryPolicy::Degrade,
        ] {
            let out = run_workload(&RunConfig::concurrent(6).with_recovery(policy), &kinds).unwrap();
            assert_eq!(out.result.makespan, base.result.makespan, "{policy:?}");
            assert_eq!(
                format!("{:?}", out.result.apps),
                format!("{:?}", base.result.apps),
                "{policy:?}: recovery config must not perturb a fault-free run"
            );
            assert_eq!(out.retries, 0);
            assert!(!out.degraded);
        }
    }

    #[test]
    fn retry_exhaustion_leaves_app_failed() {
        // A 100% kernel-fault rate can never be retried successfully.
        let kinds = homogeneous_workload(AppKind::Knearest, 2);
        let cfg = RunConfig::concurrent(2)
            .with_faults(
                FaultPlan::none()
                    .with_rate(FaultKind::KernelFault, 1.0)
                    .with_seed(5),
            )
            .with_recovery(RecoveryPolicy::Retry {
                max_attempts: 2,
                backoff: Dur::from_us(10),
            });
        let out = run_workload(&cfg, &kinds).unwrap();
        assert_eq!(out.retries, 4, "2 apps x 2 exhausted attempts");
        for a in &out.result.apps {
            assert!(a.outcome.is_failed(), "{}: unrecoverable", a.label);
        }
    }

    #[test]
    fn outcome_metrics_populated() {
        let out = run_workload(
            &RunConfig::concurrent(2),
            &homogeneous_workload(AppKind::Knearest, 2),
        )
        .unwrap();
        assert!(out.makespan().as_ns() > 0);
        assert!(out.energy_j() > 0.0);
        assert!(out.avg_power_w() > 0.0);
        assert!(out.mean_le(Dir::HtoD).is_some());
    }
}
