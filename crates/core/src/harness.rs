//! The run harness: stream management, thread launch, measurement.
//!
//! Mirrors the paper's test-harness execution flow (§IV): instantiate a
//! class object per application, start the power monitor, launch each
//! application on its own child thread (in schedule order, which is
//! also stream-allocation order), join, and report. Serialized
//! baselines chain thread starts so exactly one application runs at a
//! time on a single stream.

use crate::kernel::{build_program, Kernel, Memsync, RodiniaApp};
use crate::ordering::{schedule, ScheduleOrder};
use hq_des::rng::DetRng;
use hq_des::time::{Dur, SimTime};
use hq_gpu::prelude::*;
use hq_power::{PowerModel, PowerMonitor, PowerReport};
use hq_workloads::apps::AppKind;
use serde::{Deserialize, Serialize};

/// Memory-synchronization technique selection (mutex ids are created
/// internally by the harness).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MemsyncMode {
    /// Default CUDA behaviour.
    Off,
    /// Mutex released right after the enqueues.
    Enqueue,
    /// Mutex held until the stage's transfers complete (the paper's
    /// mechanism).
    Synced,
}

/// Full configuration of one harness run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Device model.
    pub device: DeviceConfig,
    /// Host timing model.
    pub host: HostConfig,
    /// Number of CUDA streams (`NS`); applications are assigned
    /// round-robin in schedule order.
    pub num_streams: u32,
    /// Launch order policy.
    pub order: ScheduleOrder,
    /// Memory-transfer synchronization.
    pub memsync: MemsyncMode,
    /// Fully serialized baseline: one stream, threads chained so one
    /// application runs at a time.
    pub serialize: bool,
    /// Simulation seed (jitter + random shuffle).
    pub seed: u64,
    /// Record timeline spans (disable for sweeps).
    pub trace: bool,
    /// Board power model.
    pub power: PowerModel,
    /// Power sensor period.
    pub sample_period: Dur,
}

impl RunConfig {
    /// Concurrent run on `num_streams` streams, Naïve FIFO, no memsync.
    pub fn concurrent(num_streams: u32) -> Self {
        RunConfig {
            device: DeviceConfig::tesla_k20(),
            host: HostConfig::default(),
            num_streams,
            order: ScheduleOrder::NaiveFifo,
            memsync: MemsyncMode::Off,
            serialize: false,
            seed: 0xC0FFEE,
            trace: false,
            power: PowerModel::tesla_k20(),
            sample_period: Dur::from_ms(15),
        }
    }

    /// The paper's serialized baseline.
    pub fn serial() -> Self {
        RunConfig {
            num_streams: 1,
            serialize: true,
            ..Self::concurrent(1)
        }
    }

    /// Builder-style order override.
    pub fn with_order(mut self, order: ScheduleOrder) -> Self {
        self.order = order;
        self
    }

    /// Builder-style memsync override.
    pub fn with_memsync(mut self, memsync: MemsyncMode) -> Self {
        self.memsync = memsync;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style trace toggle.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// One scheduled application instance.
pub type AppSpec = (AppKind, usize);

/// Everything measured in one harness run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Launch order actually used (labels, in order).
    pub schedule: Vec<String>,
    /// Raw simulation output.
    pub result: SimResult,
    /// Power/energy measurement.
    pub power: PowerReport,
}

impl RunOutcome {
    /// Total wall time of the workload.
    pub fn makespan(&self) -> Dur {
        self.result.makespan - SimTime::ZERO
    }

    /// Total GPU energy in Joules.
    pub fn energy_j(&self) -> f64 {
        self.power.energy_j
    }

    /// Time-weighted average power in Watts.
    pub fn avg_power_w(&self) -> f64 {
        self.power.avg_true_w
    }

    /// Mean effective memory transfer latency across applications.
    pub fn mean_le(&self, dir: Dir) -> Option<Dur> {
        self.result.mean_effective_latency(dir)
    }
}

/// Build the per-type instance groups and apply the scheduling order.
pub fn build_schedule(kinds: &[AppKind], order: ScheduleOrder, seed: u64) -> Vec<AppSpec> {
    // Group by type in first-appearance order, numbering instances
    // within each type.
    let mut type_order: Vec<AppKind> = Vec::new();
    for &k in kinds {
        if !type_order.contains(&k) {
            type_order.push(k);
        }
    }
    let groups: Vec<Vec<AppSpec>> = type_order
        .iter()
        .map(|&t| {
            (0..kinds.iter().filter(|&&k| k == t).count())
                .map(|i| (t, i))
                .collect()
        })
        .collect();
    let mut rng = DetRng::seed_from_u64(seed).fork(0x0bde7);
    schedule(&groups, order, &mut rng)
}

/// Run an explicit schedule (used by the dynamic scheduler, which
/// searches orders directly).
pub fn run_schedule(cfg: &RunConfig, specs: &[AppSpec]) -> Result<RunOutcome, SimError> {
    let num_streams = if cfg.serialize { 1 } else { cfg.num_streams };
    let mut sim = GpuSim::with_trace(cfg.device.clone(), cfg.host, cfg.seed, cfg.trace);
    let mut streams = crate::streams::StreamManager::create(&mut sim, num_streams);
    let memsync = match cfg.memsync {
        MemsyncMode::Off => Memsync::Off,
        MemsyncMode::Enqueue => Memsync::Enqueue(sim.create_mutex()),
        MemsyncMode::Synced => Memsync::Synced(sim.create_mutex()),
    };
    let mut labels = Vec::with_capacity(specs.len());
    let mut prev: Option<AppId> = None;
    for &(kind, instance) in specs.iter() {
        let app = RodiniaApp::new(kind, instance);
        labels.push(Kernel::label(&app));
        let program = build_program(&app, memsync);
        let id = sim.add_app(program, streams.acquire());
        if cfg.serialize {
            if let Some(p) = prev {
                sim.set_start_after(id, p);
            }
            prev = Some(id);
        }
    }
    let result = sim.run()?;
    let power = PowerMonitor::with_period(cfg.power, cfg.sample_period).measure(&result);
    Ok(RunOutcome {
        schedule: labels,
        result,
        power,
    })
}

/// Schedule `kinds` under the configured order and run.
pub fn run_workload(cfg: &RunConfig, kinds: &[AppKind]) -> Result<RunOutcome, SimError> {
    let specs = build_schedule(kinds, cfg.order, cfg.seed);
    run_schedule(cfg, &specs)
}

/// The paper's heterogeneous workload: `total` applications evenly
/// split between two types (§IV).
pub fn pair_workload(x: AppKind, y: AppKind, total: usize) -> Vec<AppKind> {
    let m = total / 2;
    let mut kinds = vec![x; m];
    kinds.extend(vec![y; total - m]);
    kinds
}

/// A homogeneous workload of `n` copies of one type.
pub fn homogeneous_workload(kind: AppKind, n: usize) -> Vec<AppKind> {
    vec![kind; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_workload_splits_evenly() {
        let w = pair_workload(AppKind::Gaussian, AppKind::Needle, 8);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Gaussian).count(), 4);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Needle).count(), 4);
        let w = pair_workload(AppKind::Gaussian, AppKind::Needle, 5);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Needle).count(), 3);
    }

    #[test]
    fn build_schedule_round_robin_instances() {
        let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 6);
        let specs = build_schedule(&kinds, ScheduleOrder::RoundRobin, 1);
        assert_eq!(
            specs,
            vec![
                (AppKind::Needle, 0),
                (AppKind::Knearest, 0),
                (AppKind::Needle, 1),
                (AppKind::Knearest, 1),
                (AppKind::Needle, 2),
                (AppKind::Knearest, 2),
            ]
        );
    }

    #[test]
    fn serial_run_executes_one_at_a_time() {
        let cfg = RunConfig::serial().with_trace(true);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let out = run_workload(&cfg, &kinds).unwrap();
        assert_eq!(out.result.apps.len(), 4);
        // Threads ran disjointly: each app starts after the previous
        // one finished.
        let mut spans: Vec<(SimTime, SimTime)> = out
            .result
            .apps
            .iter()
            .map(|a| (a.started.unwrap(), a.finished.unwrap()))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "serial apps must not overlap");
        }
    }

    #[test]
    fn concurrent_beats_serial_for_small_apps() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 8);
        let serial = run_workload(&RunConfig::serial(), &kinds).unwrap();
        let conc = run_workload(&RunConfig::concurrent(8), &kinds).unwrap();
        assert!(
            conc.makespan() < serial.makespan(),
            "concurrent {} !< serial {}",
            conc.makespan(),
            serial.makespan()
        );
    }

    #[test]
    fn memsync_reduces_effective_latency() {
        let kinds = pair_workload(AppKind::Gaussian, AppKind::Needle, 8);
        let base = run_workload(&RunConfig::concurrent(8), &kinds).unwrap();
        let synced = run_workload(
            &RunConfig::concurrent(8).with_memsync(MemsyncMode::Synced),
            &kinds,
        )
        .unwrap();
        let le_base = base.mean_le(Dir::HtoD).unwrap();
        let le_sync = synced.mean_le(Dir::HtoD).unwrap();
        assert!(
            le_sync < le_base,
            "memsync must cut Le: {le_sync} !< {le_base}"
        );
    }

    #[test]
    fn schedule_labels_match_order() {
        let cfg = RunConfig::concurrent(4).with_order(ScheduleOrder::ReverseRoundRobin);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let out = run_workload(&cfg, &kinds).unwrap();
        assert_eq!(
            out.schedule,
            vec!["needle#0", "knearest#0", "needle#1", "knearest#1"]
        );
    }

    #[test]
    fn outcome_metrics_populated() {
        let out = run_workload(
            &RunConfig::concurrent(2),
            &homogeneous_workload(AppKind::Knearest, 2),
        )
        .unwrap();
        assert!(out.makespan().as_ns() > 0);
        assert!(out.energy_j() > 0.0);
        assert!(out.avg_power_w() > 0.0);
        assert!(out.mean_le(Dir::HtoD).is_some());
    }
}
