//! Small table/report formatting helpers shared by the experiment
//! binaries (markdown for EXPERIMENTS.md, CSV for plotting).

use std::fmt::Write as _;

/// A simple rectangular table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        out
    }

    /// Render as CSV (commas in cells replaced by `;`).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Render as an aligned plain-text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a signed percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format Joules with three significant decimals.
pub fn joules(x: f64) -> String {
    format!("{x:.3} J")
}

/// Format Watts with one decimal.
pub fn watts(x: f64) -> String {
    format!("{x:.1} W")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["pair", "improvement"]);
        t.row(vec!["gaussian+needle", "+31.8%"]);
        t.row(vec!["nn+srad", "+9.4%"]);
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| pair | improvement |"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x,y"]);
        assert_eq!(t.to_csv(), "a\nx;y\n");
    }

    #[test]
    fn text_alignment() {
        let txt = sample().to_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("pair"));
        assert!(lines[2].starts_with("gaussian+needle"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    // 0.318 is the paper's +31.8% headline, not an approximation of 1/pi.
    #[allow(clippy::approx_constant)]
    fn formatting_helpers() {
        assert_eq!(pct(0.318), "+31.8%");
        assert_eq!(pct(-0.104), "-10.4%");
        assert_eq!(watts(107.25), "107.2 W");
        assert!(joules(1.5).contains("1.500"));
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
