//! Serializable run summaries.
//!
//! [`RunSummary`] is the stable JSON schema experiment artifacts use:
//! everything a plotting script or regression checker needs, without
//! the full trace payload.

use crate::harness::RunOutcome;
use hq_gpu::prelude::{AppOutcome, FaultCounters};
use hq_gpu::types::Dir;
use serde::{Deserialize, Serialize};

/// Per-application summary row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppSummary {
    /// Application label (`gaussian#3`).
    pub label: String,
    /// Wall time from thread start to join, in nanoseconds.
    pub turnaround_ns: u64,
    /// Effective HtoD transfer latency (eq. 2), if the app transferred.
    pub le_htod_ns: Option<u64>,
    /// Effective DtoH transfer latency.
    pub le_dtoh_ns: Option<u64>,
    /// Completed kernel launches.
    pub kernels: u32,
    /// Bytes moved host-to-device.
    pub htod_bytes: u64,
    /// Bytes moved device-to-host.
    pub dtoh_bytes: u64,
    /// How the application ended (completed, failed, or retried).
    pub outcome: AppOutcome,
    /// Injected faults that hit this application.
    pub faults: u32,
}

/// Whole-run summary (the JSON artifact schema).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Launch order used.
    pub schedule: Vec<String>,
    /// Workload makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Total GPU energy in Joules.
    pub energy_j: f64,
    /// Time-weighted average power in Watts.
    pub avg_power_w: f64,
    /// Peak power in Watts.
    pub peak_power_w: f64,
    /// Mean device occupancy over the run, in `[0, 1]`.
    pub mean_occupancy: f64,
    /// Fault and recovery counters for the whole run.
    pub faults: FaultCounters,
    /// Retry attempts spent recovering failed applications.
    pub retries: u32,
    /// True when the Degrade policy re-ran the workload serialized.
    pub degraded: bool,
    /// Discrete events the simulation delivered. Deterministic per
    /// seed, unlike the wall-clock throughput counters in
    /// `SimResult::perf` (which are deliberately excluded from this
    /// schema — artifacts must be byte-identical across runs).
    pub events: u64,
    /// Per-application rows, in application order.
    pub apps: Vec<AppSummary>,
}

impl From<&RunOutcome> for RunSummary {
    fn from(out: &RunOutcome) -> Self {
        RunSummary {
            schedule: out.schedule.clone(),
            makespan_ns: out.makespan().as_ns(),
            energy_j: out.energy_j(),
            avg_power_w: out.avg_power_w(),
            peak_power_w: out.power.peak_w,
            mean_occupancy: out.result.mean_occupancy(),
            faults: out.result.faults,
            retries: out.retries,
            degraded: out.degraded,
            events: out.result.events,
            apps: out
                .result
                .apps
                .iter()
                .map(|a| AppSummary {
                    label: a.label.clone(),
                    turnaround_ns: a.turnaround().map(|d| d.as_ns()).unwrap_or(0),
                    le_htod_ns: a
                        .transfers(Dir::HtoD)
                        .effective_latency()
                        .map(|d| d.as_ns()),
                    le_dtoh_ns: a
                        .transfers(Dir::DtoH)
                        .effective_latency()
                        .map(|d| d.as_ns()),
                    kernels: a.kernels_completed,
                    htod_bytes: a.htod.bytes,
                    dtoh_bytes: a.dtoh.bytes,
                    outcome: a.outcome,
                    faults: a.faults,
                })
                .collect(),
        }
    }
}

impl RunSummary {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{pair_workload, run_workload, RunConfig};
    use hq_workloads::apps::AppKind;

    #[test]
    fn summary_roundtrips_through_json() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 2);
        let out = run_workload(&RunConfig::concurrent(2), &kinds).unwrap();
        let summary = RunSummary::from(&out);
        assert_eq!(summary.apps.len(), 2);
        assert!(summary.makespan_ns > 0);
        assert!(summary.energy_j > 0.0);
        assert!(summary.mean_occupancy > 0.0);
        assert!(summary.events > 0);
        let json = summary.to_json();
        let back = RunSummary::from_json(&json).unwrap();
        assert_eq!(summary, back);
    }

    #[test]
    fn per_app_fields_populated() {
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 2);
        let out = run_workload(&RunConfig::concurrent(2), &kinds).unwrap();
        let summary = RunSummary::from(&out);
        for app in &summary.apps {
            assert!(app.turnaround_ns > 0, "{}", app.label);
            assert!(app.kernels > 0);
            assert!(app.le_htod_ns.is_some());
            assert!(app.htod_bytes > 0);
        }
    }
}
