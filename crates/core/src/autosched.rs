//! Dynamic schedule search (the paper's §VI future work).
//!
//! The paper closes by envisioning a `Scheduler` class that
//! "dynamically modif[ies] the schedule and adjust[s] queue orders to
//! optimize on different objectives, such as power management". This
//! module implements that sketch as a greedy local search: start from
//! the best of the five canonical orders, then hill-climb over pairwise
//! swaps of the launch queue, evaluating each candidate on the
//! simulated device and keeping improvements. The objective is
//! pluggable (makespan or energy), matching the paper's throughput /
//! power-management framing.

use crate::harness::{build_schedule, run_schedule, AppSpec, RunConfig, RunOutcome};
#[cfg(test)]
use crate::harness::run_schedule_batch;
use crate::ordering::ScheduleOrder;
use hq_des::rng::DetRng;
use hq_gpu::result::SimError;
use hq_workloads::apps::AppKind;
use serde::{Deserialize, Serialize};

/// How the search evaluates one candidate schedule. Callers that
/// memoize deterministic runs (e.g. `hq-bench`'s scenario cache) pass
/// their cached entry point here so repeated candidates cost nothing.
pub type Runner = fn(&RunConfig, &[AppSpec]) -> Result<RunOutcome, SimError>;

/// Batched counterpart of [`Runner`]: evaluate many candidate
/// schedules under one config in a single call (lanes of one merged
/// event loop, or one cache sweep — the scheduler does not care). Must
/// return one result per input lane, in order, each identical to what
/// the serial runner would have produced.
pub type BatchRunner = fn(&RunConfig, &[Vec<AppSpec>]) -> Vec<Result<RunOutcome, SimError>>;

/// How many speculative hill-climb candidates [`AutoScheduler::optimize_batched`]
/// evaluates per batch. Everything after the first accepted improvement
/// in a chunk is discarded (its basis schedule is stale), so a bigger
/// chunk buys more batching on plateaus and wastes more on improvement
/// streaks; 8 is comfortably on the plateau side for budgets ~24.
const SPECULATION_CHUNK: usize = 8;

/// What the scheduler optimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize workload makespan (throughput).
    Makespan,
    /// Minimize total GPU energy (power management).
    Energy,
}

impl Objective {
    fn score(self, out: &RunOutcome) -> f64 {
        match self {
            Objective::Makespan => out.makespan().as_ns() as f64,
            Objective::Energy => out.energy_j(),
        }
    }
}

/// Result of a schedule search.
#[derive(Debug)]
pub struct SearchResult {
    /// The best schedule found.
    pub schedule: Vec<AppSpec>,
    /// Its outcome.
    pub outcome: RunOutcome,
    /// Objective value of the best schedule.
    pub best_score: f64,
    /// Objective value of the best *canonical* order (the improvement
    /// attributable to dynamic search is `canonical_score − best_score`).
    pub canonical_score: f64,
    /// Number of simulations evaluated.
    pub evaluations: usize,
}

/// Greedy dynamic scheduler.
#[derive(Clone, Copy, Debug)]
pub struct AutoScheduler {
    /// Objective to minimize.
    pub objective: Objective,
    /// Number of swap candidates to evaluate after seeding from the
    /// canonical orders.
    pub swap_budget: usize,
    /// Search randomness seed.
    pub seed: u64,
}

impl AutoScheduler {
    /// A scheduler with a modest default budget.
    pub fn new(objective: Objective) -> Self {
        AutoScheduler {
            objective,
            swap_budget: 20,
            seed: 0x5EED,
        }
    }

    /// Search launch orders for `kinds` under `cfg`, simulating each
    /// candidate directly with [`run_schedule`].
    pub fn optimize(&self, cfg: &RunConfig, kinds: &[AppKind]) -> SearchResult {
        self.optimize_with(run_schedule, cfg, kinds)
    }

    /// Like [`AutoScheduler::optimize`], but every candidate evaluation
    /// goes through `runner` — the hook a memoizing harness uses to
    /// serve repeated candidates from its scenario cache.
    pub fn optimize_with(&self, runner: Runner, cfg: &RunConfig, kinds: &[AppKind]) -> SearchResult {
        let mut evals = 0;
        // Seed: best of the five canonical orders.
        let mut best_specs: Option<Vec<AppSpec>> = None;
        let mut best_out: Option<RunOutcome> = None;
        let mut best_score = f64::INFINITY;
        for order in ScheduleOrder::ALL {
            let specs = build_schedule(kinds, order, cfg.seed);
            let out = runner(cfg, &specs).expect("schedule runs");
            evals += 1;
            let s = self.objective.score(&out);
            if s < best_score {
                best_score = s;
                best_specs = Some(specs);
                best_out = Some(out);
            }
        }
        let canonical_score = best_score;
        let mut best_specs = best_specs.expect("at least one order evaluated");
        let mut best_out = best_out.expect("at least one order evaluated");

        // Hill-climb: random pairwise swaps, keep improvements.
        let mut rng = DetRng::seed_from_u64(self.seed);
        let n = best_specs.len();
        if n >= 2 {
            for _ in 0..self.swap_budget {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i == j || best_specs[i] == best_specs[j] {
                    continue;
                }
                let mut cand = best_specs.clone();
                cand.swap(i, j);
                let out = runner(cfg, &cand).expect("schedule runs");
                evals += 1;
                let s = self.objective.score(&out);
                if s < best_score {
                    best_score = s;
                    best_specs = cand;
                    best_out = out;
                }
            }
        }
        SearchResult {
            schedule: best_specs,
            outcome: best_out,
            best_score,
            canonical_score,
            evaluations: evals,
        }
    }

    /// Like [`AutoScheduler::optimize_with`], but candidate evaluations
    /// go through a [`BatchRunner`] so independent candidates share one
    /// merged event loop. Returns a `SearchResult` identical to the
    /// serial search:
    ///
    /// - The five canonical seed orders are mutually independent — one
    ///   batch.
    /// - Hill-climb `(i, j)` swap draws are outcome-independent (the
    ///   RNG never observes scores), so the whole draw sequence is
    ///   known up front. Candidates, however, derive from the *current*
    ///   best schedule, which changes at every accepted improvement —
    ///   so candidates are speculated in chunks against the current
    ///   best, results walked in draw order, and the rest of a chunk
    ///   discarded at the first acceptance (its basis is stale); the
    ///   walk then resumes from the draw after the acceptance. Skip
    ///   rules and evaluation counting replay the serial loop exactly.
    ///   Discarded speculative runs are not lost when the runner caches
    ///   (the scenario cache turns a re-derived candidate into a warm
    ///   hit).
    pub fn optimize_batched(
        &self,
        runner: BatchRunner,
        cfg: &RunConfig,
        kinds: &[AppKind],
    ) -> SearchResult {
        let mut evals = 0;
        // Seed: best of the five canonical orders, evaluated as one batch.
        let orders: Vec<Vec<AppSpec>> = ScheduleOrder::ALL
            .into_iter()
            .map(|order| build_schedule(kinds, order, cfg.seed))
            .collect();
        let outs = runner(cfg, &orders);
        let mut best_specs: Option<Vec<AppSpec>> = None;
        let mut best_out: Option<RunOutcome> = None;
        let mut best_score = f64::INFINITY;
        for (specs, out) in orders.into_iter().zip(outs) {
            let out = out.expect("schedule runs");
            evals += 1;
            let s = self.objective.score(&out);
            if s < best_score {
                best_score = s;
                best_specs = Some(specs);
                best_out = Some(out);
            }
        }
        let canonical_score = best_score;
        let mut best_specs = best_specs.expect("at least one order evaluated");
        let mut best_out = best_out.expect("at least one order evaluated");

        let mut rng = DetRng::seed_from_u64(self.seed);
        let n = best_specs.len();
        if n >= 2 {
            let draws: Vec<(usize, usize)> = (0..self.swap_budget)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let mut next = 0;
            while next < draws.len() {
                // Assemble a speculative chunk against the current best.
                let mut chunk: Vec<Vec<AppSpec>> = Vec::new();
                let mut chunk_draw: Vec<usize> = Vec::new();
                let mut t = next;
                while t < draws.len() && chunk.len() < SPECULATION_CHUNK {
                    let (i, j) = draws[t];
                    if i != j && best_specs[i] != best_specs[j] {
                        let mut cand = best_specs.clone();
                        cand.swap(i, j);
                        chunk.push(cand);
                        chunk_draw.push(t);
                    }
                    t += 1;
                }
                if chunk.is_empty() {
                    next = t;
                    continue;
                }
                let outs = runner(cfg, &chunk);
                let mut accepted: Option<usize> = None;
                for (ci, out) in outs.into_iter().enumerate() {
                    let out = out.expect("schedule runs");
                    evals += 1;
                    let s = self.objective.score(&out);
                    if s < best_score {
                        best_score = s;
                        best_specs = std::mem::take(&mut chunk[ci]);
                        best_out = out;
                        accepted = Some(ci);
                        break;
                    }
                }
                // On acceptance, everything after that draw — including
                // skip decisions made while assembling this chunk — was
                // based on the stale schedule; replay from the next draw.
                next = match accepted {
                    Some(ci) => chunk_draw[ci] + 1,
                    None => t,
                };
            }
        }
        SearchResult {
            schedule: best_specs,
            outcome: best_out,
            best_score,
            canonical_score,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::pair_workload;

    #[test]
    fn search_never_worse_than_canonical() {
        let cfg = RunConfig::concurrent(4);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
        let sched = AutoScheduler {
            objective: Objective::Makespan,
            swap_budget: 6,
            seed: 1,
        };
        let res = sched.optimize(&cfg, &kinds);
        assert!(res.best_score <= res.canonical_score);
        assert_eq!(res.schedule.len(), 4);
        assert!(res.evaluations >= 5, "all canonical orders evaluated");
    }

    #[test]
    fn energy_objective_scores_energy() {
        let cfg = RunConfig::concurrent(2);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 2);
        let sched = AutoScheduler {
            objective: Objective::Energy,
            swap_budget: 2,
            seed: 2,
        };
        let res = sched.optimize(&cfg, &kinds);
        assert!((res.best_score - res.outcome.energy_j()).abs() < 1e-9);
    }

    fn batch_runner(cfg: &RunConfig, lanes: &[Vec<AppSpec>]) -> Vec<Result<RunOutcome, SimError>> {
        let jobs: Vec<(RunConfig, Vec<AppSpec>)> =
            lanes.iter().map(|l| (cfg.clone(), l.clone())).collect();
        run_schedule_batch(&jobs)
    }

    /// The speculative batched search must replay the serial search
    /// exactly: same best schedule, same scores, same evaluation count.
    #[test]
    fn batched_search_matches_serial() {
        let cfg = RunConfig::concurrent(4);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 6);
        for objective in [Objective::Makespan, Objective::Energy] {
            let sched = AutoScheduler {
                objective,
                swap_budget: 12,
                seed: 17,
            };
            let serial = sched.optimize_with(run_schedule, &cfg, &kinds);
            let batched = sched.optimize_batched(batch_runner, &cfg, &kinds);
            assert_eq!(serial.schedule, batched.schedule, "{objective:?}");
            assert_eq!(serial.best_score, batched.best_score, "{objective:?}");
            assert_eq!(
                serial.canonical_score, batched.canonical_score,
                "{objective:?}"
            );
            assert_eq!(serial.evaluations, batched.evaluations, "{objective:?}");
            assert_eq!(
                serial.outcome.makespan(),
                batched.outcome.makespan(),
                "{objective:?}"
            );
        }
    }

    #[test]
    fn schedule_is_a_permutation_of_input() {
        let cfg = RunConfig::concurrent(4);
        let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 6);
        let res = AutoScheduler::new(Objective::Makespan).optimize(&cfg, &kinds);
        let mut got: Vec<AppKind> = res.schedule.iter().map(|&(k, _)| k).collect();
        let mut want = kinds.clone();
        got.sort_by_key(|k| k.name());
        want.sort_by_key(|k| k.name());
        assert_eq!(got, want);
    }
}
