//! The `StreamManager` of the paper's framework (§III-E): dynamically
//! creates the independent CUDA streams and assigns them to application
//! threads **in launch order**, which is what makes the scheduling
//! order meaningful when applications outnumber streams (§III-C: the
//! assignment induces serialization dependencies within each stream's
//! hardware queue).

use hq_gpu::sim::GpuSim;
use hq_gpu::types::StreamId;

/// Round-robin stream allocator over a fixed pool.
#[derive(Debug)]
pub struct StreamManager {
    streams: Vec<StreamId>,
    next: usize,
    issued: usize,
}

impl StreamManager {
    /// Create `n` streams on the simulator (at least one).
    pub fn create(sim: &mut GpuSim, n: u32) -> Self {
        StreamManager {
            streams: sim.create_streams(n.max(1)),
            next: 0,
            issued: 0,
        }
    }

    /// Number of managed streams (`NS`).
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True if the pool is empty (never the case after `create`).
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Total assignments handed out so far (`NA` once scheduling ends).
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// Assign the next stream in round-robin order. The *i*-th call
    /// returns stream `i mod NS`, so with `NA > NS` applications the
    /// ones mapped to the same stream serialize — the dependency the
    /// reordering techniques exploit.
    pub fn acquire(&mut self) -> StreamId {
        let s = self.streams[self.next];
        self.next = (self.next + 1) % self.streams.len();
        self.issued += 1;
        s
    }

    /// Reset the round-robin cursor (a new scheduling round).
    pub fn reset(&mut self) {
        self.next = 0;
        self.issued = 0;
    }

    /// The managed stream ids.
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hq_gpu::prelude::*;

    fn sim() -> GpuSim {
        GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 1)
    }

    #[test]
    fn round_robin_assignment() {
        let mut s = sim();
        let mut mgr = StreamManager::create(&mut s, 3);
        let got: Vec<u32> = (0..7).map(|_| mgr.acquire().0).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(mgr.issued(), 7);
    }

    #[test]
    fn zero_requested_streams_clamps_to_one() {
        let mut s = sim();
        let mut mgr = StreamManager::create(&mut s, 0);
        assert_eq!(mgr.len(), 1);
        assert!(!mgr.is_empty());
        assert_eq!(mgr.acquire().0, 0);
    }

    #[test]
    fn reset_restarts_cursor() {
        let mut s = sim();
        let mut mgr = StreamManager::create(&mut s, 2);
        mgr.acquire();
        mgr.reset();
        assert_eq!(mgr.acquire().0, 0);
        assert_eq!(mgr.issued(), 1);
    }
}
