//! Umbrella crate re-exporting the Hyper-Q reproduction workspace,
//! plus the `hyperq` command-line interface.
//!
//! See [`hyperq_core`] for the management framework (the paper's
//! contribution), [`hq_gpu`] for the simulated Kepler-class device, and
//! [`hq_workloads`] for the Rodinia workload ports.

pub mod cli;

pub use hq_des as des;
pub use hq_gpu as gpu;
pub use hq_power as power;
pub use hq_workloads as workloads;
pub use hyperq_core as hyperq;
