//! Command implementations for the `hyperq` CLI.

use crate::cli::args::{Cli, Command, DevicePreset, RecoveryChoice, USAGE};
use crate::cli::workload_spec::format_workload;
use hq_bench::service::{JobSpec, ServeOptions};
use hq_des::time::Dur;
use hq_gpu::prelude::*;
use hq_gpu::types::Dir;
use hq_workloads::geometry;
use hyperq_core::autosched::{AutoScheduler, Objective};
use hyperq_core::harness::{run_workload, MemsyncMode, RecoveryPolicy, RunConfig, RunOutcome};
use hyperq_core::metrics::improvement;
use hyperq_core::report::{joules, pct, watts, Table};

fn device_for(preset: DevicePreset) -> DeviceConfig {
    match preset {
        DevicePreset::K20 => DeviceConfig::tesla_k20(),
        DevicePreset::K40 => DeviceConfig::tesla_k40(),
        DevicePreset::Fermi => DeviceConfig::fermi_like(),
    }
}

fn recovery_for(cli: &Cli) -> RecoveryPolicy {
    match cli.recovery {
        RecoveryChoice::FailFast => RecoveryPolicy::FailFast,
        RecoveryChoice::Retry => RecoveryPolicy::Retry {
            max_attempts: cli.attempts,
            backoff: Dur::from_us(100),
        },
        RecoveryChoice::Degrade => RecoveryPolicy::Degrade,
    }
}

fn config_from(cli: &Cli, trace: bool) -> RunConfig {
    let mut cfg = if cli.serial {
        RunConfig::serial()
    } else {
        RunConfig::concurrent(cli.streams)
    };
    cfg.device = device_for(cli.device);
    cfg = cfg
        .with_order(cli.order)
        .with_memsync(cli.memsync)
        .with_seed(cli.seed)
        .with_trace(trace)
        .with_recovery(recovery_for(cli));
    if let Some(plan) = &cli.faults {
        cfg = cfg.with_faults(plan.clone());
    }
    cfg
}

fn outcome_summary(out: &RunOutcome) -> String {
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["makespan".to_string(), out.makespan().to_string()]);
    t.row(vec!["avg power".to_string(), watts(out.avg_power_w())]);
    t.row(vec!["peak power".to_string(), watts(out.power.peak_w)]);
    t.row(vec!["energy".to_string(), joules(out.energy_j())]);
    // Deterministic event count only; wall-clock throughput goes to
    // stderr in `cmd_run` so run output stays seed-reproducible.
    t.row(vec!["events".to_string(), out.result.perf.events.to_string()]);
    if let Some(le) = out.mean_le(Dir::HtoD) {
        t.row(vec!["mean Le (HtoD)".to_string(), le.to_string()]);
    }
    if let Some(le) = out.mean_le(Dir::DtoH) {
        t.row(vec!["mean Le (DtoH)".to_string(), le.to_string()]);
    }
    let f = &out.result.faults;
    if f.injected() > 0 || out.retries > 0 || out.degraded {
        t.row(vec![
            "faults injected".to_string(),
            format!(
                "{} (copy {}, kernel {}, watchdog kills {})",
                f.injected(),
                f.copy_faults,
                f.kernel_faults,
                f.watchdog_kills
            ),
        ]);
        t.row(vec!["ops errored".to_string(), f.ops_errored.to_string()]);
        t.row(vec!["retries".to_string(), out.retries.to_string()]);
        t.row(vec!["degraded".to_string(), out.degraded.to_string()]);
    }
    let mut s = t.to_text();
    let troubled: Vec<String> = out
        .result
        .apps
        .iter()
        .filter(|a| a.outcome != AppOutcome::Completed)
        .map(|a| format!("  {} -> {:?}", a.label, a.outcome))
        .collect();
    if !troubled.is_empty() {
        s.push_str("\napp outcomes:\n");
        s.push_str(&troubled.join("\n"));
        s.push('\n');
    }
    s
}

fn cmd_run(cli: &Cli) -> Result<String, String> {
    let want_trace = cli.gantt || cli.chrome.is_some();
    let cfg = config_from(cli, want_trace);
    let out = run_workload(&cfg, &cli.workload).map_err(|e| e.to_string())?;
    let p = &out.result.perf;
    eprintln!(
        "perf: {} events in {:.3} s ({:.0} events/s, peak pending {}, \
         cancelled {}, tombstone ratio {:.3})",
        p.events, p.wall_secs, p.events_per_sec, p.peak_pending, p.cancelled, p.tombstone_ratio
    );
    let mut s = format!(
        "workload: {}\nschedule: {}\n\n{}",
        format_workload(&cli.workload),
        out.schedule.join(", "),
        outcome_summary(&out)
    );
    if cli.gantt {
        s.push_str("\ntimeline:\n");
        s.push_str(&out.result.trace.render_gantt(100));
    }
    if let Some(path) = &cli.json {
        let summary = hyperq_core::summary::RunSummary::from(&out);
        std::fs::write(path, summary.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        s.push_str(&format!("\nrun summary written to {path}\n"));
    }
    if let Some(path) = &cli.chrome {
        std::fs::write(path, out.result.trace.to_chrome_json())
            .map_err(|e| format!("writing {path}: {e}"))?;
        s.push_str(&format!("\nchrome trace written to {path}\n"));
    }
    Ok(s)
}

fn cmd_compare(cli: &Cli) -> Result<String, String> {
    let mut serial_cfg = config_from(cli, false);
    serial_cfg.serialize = true;
    serial_cfg.num_streams = 1;
    serial_cfg.memsync = MemsyncMode::Off;
    let serial = run_workload(&serial_cfg, &cli.workload).map_err(|e| e.to_string())?;

    let mut rows: Vec<(&str, RunOutcome)> = vec![("serial", serial)];
    for (name, memsync) in [
        ("concurrent", MemsyncMode::Off),
        ("concurrent+memsync", MemsyncMode::Synced),
    ] {
        let mut cfg = config_from(cli, false);
        cfg.serialize = false;
        cfg.memsync = memsync;
        rows.push((
            name,
            run_workload(&cfg, &cli.workload).map_err(|e| e.to_string())?,
        ));
    }
    let base_mk = rows[0].1.makespan();
    let base_e = rows[0].1.energy_j();
    let mut t = Table::new(vec![
        "configuration",
        "makespan",
        "vs serial",
        "energy",
        "energy vs serial",
    ]);
    for (name, out) in &rows {
        t.row(vec![
            name.to_string(),
            out.makespan().to_string(),
            pct(improvement(base_mk, out.makespan())),
            joules(out.energy_j()),
            pct((base_e - out.energy_j()) / base_e),
        ]);
    }
    Ok(format!(
        "workload: {} on {} streams ({})\n\n{}",
        format_workload(&cli.workload),
        cli.streams,
        device_for(cli.device).name,
        t.to_text()
    ))
}

fn cmd_trace(cli: &Cli) -> Result<String, String> {
    let mut cli2 = cli.clone();
    cli2.gantt = true;
    cmd_run(&cli2)
}

fn cmd_autosched(cli: &Cli) -> Result<String, String> {
    let cfg = config_from(cli, false);
    let sched = AutoScheduler {
        objective: if cli.objective_energy {
            Objective::Energy
        } else {
            Objective::Makespan
        },
        swap_budget: cli.budget,
        seed: cli.seed,
    };
    let res = sched.optimize(&cfg, &cli.workload);
    let labels: Vec<String> = res
        .schedule
        .iter()
        .map(|(k, i)| format!("{}#{i}", k.name()))
        .collect();
    Ok(format!(
        "objective: {:?}\nevaluations: {}\nbest canonical score: {:.3}\nbest found score:     {:.3} ({} better)\nschedule: {}\n\n{}",
        sched.objective,
        res.evaluations,
        res.canonical_score,
        res.best_score,
        pct((res.canonical_score - res.best_score) / res.canonical_score),
        labels.join(", "),
        outcome_summary(&res.outcome)
    ))
}

/// Fault-injection demo: run one faulty workload under every recovery
/// policy and tabulate how each one absorbs the damage.
fn cmd_faults(cli: &Cli) -> Result<String, String> {
    let mut cli = cli.clone();
    if cli.workload.is_empty() {
        cli.workload = crate::cli::workload_spec::parse_workload("nn*2+needle*2")?;
    }
    let plan = cli.faults.clone().unwrap_or_else(|| {
        FaultPlan::none()
            .with_fault(FaultKind::KernelFault, AppId(1), 0)
            .with_fault(FaultKind::CopyFail, AppId(2), 0)
            .with_seed(cli.seed)
    });
    let mut t = Table::new(vec![
        "recovery",
        "makespan",
        "failed apps",
        "retries",
        "degraded",
        "faults injected",
    ]);
    for choice in [
        RecoveryChoice::FailFast,
        RecoveryChoice::Retry,
        RecoveryChoice::Degrade,
    ] {
        cli.recovery = choice;
        let cfg = config_from(&cli, false).with_faults(plan.clone());
        let out = run_workload(&cfg, &cli.workload).map_err(|e| e.to_string())?;
        let failed = out
            .result
            .apps
            .iter()
            .filter(|a| a.outcome.is_failed())
            .count();
        t.row(vec![
            format!("{choice:?}").to_ascii_lowercase(),
            out.makespan().to_string(),
            failed.to_string(),
            out.retries.to_string(),
            out.degraded.to_string(),
            out.result.faults.injected().to_string(),
        ]);
    }
    Ok(format!(
        "workload: {} on {} streams, fault plan: {} scripted fault(s)\n\n{}",
        format_workload(&cli.workload),
        cli.streams,
        plan.scripted.len(),
        t.to_text()
    ))
}

fn cmd_devices() -> String {
    let mut t = Table::new(vec![
        "preset",
        "name",
        "SMX",
        "max resident blocks",
        "hw queues",
        "memory",
    ]);
    for (flag, dev) in [
        ("k20", DeviceConfig::tesla_k20()),
        ("k40", DeviceConfig::tesla_k40()),
        ("fermi", DeviceConfig::fermi_like()),
    ] {
        t.row(vec![
            flag.to_string(),
            dev.name.clone(),
            dev.num_smx.to_string(),
            dev.max_resident_blocks().to_string(),
            dev.hw_queues.to_string(),
            format!("{} GiB", dev.device_mem_bytes >> 30),
        ]);
    }
    t.to_text()
}

/// Replay a chaos-soak repro file (written by the `chaos` soak driver
/// on failure) with the invariant auditor enabled. Succeeds with a
/// status line either way — a repro that still fails is the expected,
/// useful outcome — and only errors when the file itself is unusable.
fn cmd_repro(cli: &Cli) -> Result<String, String> {
    let path = cli.repro_file.as_deref().expect("checked by parse_args");
    // Torture repros are self-identifying (`"kind": "torture"`); route
    // them to the torture replayer, everything else to the chaos one.
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(case) = hq_bench::torture::case_from_json(&text) {
        return match hq_bench::torture::run_case(&case) {
            hq_bench::torture::TortureOutcome::Pass(stats) => Ok(format!(
                "repro {path}: PASS — invariants held ({} acked, {} resolved, {} disk faults, {} net faults)",
                stats.acked, stats.resolved, stats.io_faults, stats.net_faults
            )),
            hq_bench::torture::TortureOutcome::Fail(kind, detail) => {
                Ok(format!("repro {path}: FAIL ({kind})\n{detail}"))
            }
        };
    }
    match hq_bench::chaos::run_repro(std::path::Path::new(path))? {
        hq_bench::chaos::CaseOutcome::Pass { .. } => Ok(format!(
            "repro {path}: PASS — the case runs clean (bug no longer reproduces)"
        )),
        hq_bench::chaos::CaseOutcome::Fail(kind, detail) => Ok(format!(
            "repro {path}: FAIL ({kind:?})\n{detail}"
        )),
    }
}

fn device_name(preset: DevicePreset) -> &'static str {
    match preset {
        DevicePreset::K20 => "k20",
        DevicePreset::K40 => "k40",
        DevicePreset::Fermi => "fermi",
    }
}

fn job_spec_from(cli: &Cli) -> JobSpec {
    JobSpec {
        workload: cli.workload.clone(),
        streams: cli.streams,
        order: cli.order,
        memsync: cli.memsync,
        serial: cli.serial,
        seed: cli.seed,
        device: device_name(cli.device).to_string(),
        deadline_ms: cli.deadline_ms,
        class: cli.job_class.clone(),
        scripted_panic: cli.scripted_panic,
        tenant: cli
            .tenant
            .clone()
            .unwrap_or_else(|| hq_bench::service::DEFAULT_TENANT.to_string()),
        // Left empty here: submit_with_retry generates a key per logical
        // submission so every retry of this invocation dedups server-side.
        idem: String::new(),
    }
}

/// `hyperq serve`: run the scenario service — a fleet coordinator with
/// `--fleet N` (supervised worker processes behind a TCP front door),
/// the single-process Unix-socket server otherwise (or, with
/// `--recover-only`, just replay the journal and report what recovery
/// did).
fn cmd_serve(cli: &Cli) -> Result<String, String> {
    if cli.fleet > 0 {
        let addr = cli.tcp.as_deref().expect("checked by parse_args");
        let dir = cli
            .fleet_dir
            .clone()
            .unwrap_or_else(|| "results/fleet".to_string());
        let mut opts = hq_bench::service::FleetOptions::new(addr, dir);
        opts.workers = cli.fleet;
        opts.queue_depth = cli.queue_depth;
        opts.worker_threads = cli.serve_workers.min(4);
        opts.breaker_threshold = cli.breaker_threshold;
        opts.breaker_cooldown_ms = cli.breaker_cooldown_ms;
        opts.heartbeat_ms = cli.heartbeat_ms;
        opts.max_restarts = cli.max_restarts;
        opts.tenant_max_queued = cli.tenant_max_queued;
        opts.tenant_max_inflight = cli.tenant_max_inflight;
        opts.tenant_rate = cli.tenant_rate;
        opts.brownout_threshold = cli.brownout_threshold;
        opts.dispatch_batch = cli.dispatch_batch;
        opts.commit_window_us = cli.commit_window_us;
        hq_bench::service::fleet::serve_fleet(opts)?;
        return Ok("fleet drained and stopped".to_string());
    }
    let socket = cli.socket.as_deref().expect("checked by parse_args");
    let mut opts = ServeOptions::new(socket);
    opts.workers = cli.serve_workers;
    opts.queue_depth = cli.queue_depth;
    opts.breaker_threshold = cli.breaker_threshold;
    opts.breaker_cooldown_ms = cli.breaker_cooldown_ms;
    opts.tenant_max_queued = cli.tenant_max_queued;
    opts.tenant_max_inflight = cli.tenant_max_inflight;
    opts.tenant_rate = cli.tenant_rate;
    opts.tenant_burst = cli.tenant_burst;
    opts.drr_quantum = cli.drr_quantum;
    opts.brownout_threshold = cli.brownout_threshold;
    opts.dispatch_batch = cli.dispatch_batch;
    opts.commit_window_us = cli.commit_window_us;
    if let Some(journal) = &cli.journal {
        opts.journal = journal.into();
    }
    if let Some(dir) = &cli.artifact_dir {
        opts.artifact_dir = dir.into();
    }
    let report = hq_bench::service::serve(opts, cli.recover_only)?;
    let mut s = report.summary();
    for (id, status) in &report.replayed {
        s.push_str(&format!("\nreplayed job {id} -> {status}"));
    }
    Ok(s)
}

fn render_done(id: u64, done: &hq_bench::service::JobDone) -> String {
    use hq_bench::service::JobDone;
    match done {
        JobDone::Ok { artifact } => format!("job {id}: ok\nartifact: {artifact}"),
        JobDone::DeadlineExceeded => format!("job {id}: deadline-exceeded"),
        JobDone::Panicked(msg) => format!("job {id}: panicked: {msg}"),
        JobDone::SimError(msg) => format!("job {id}: sim-error: {msg}"),
    }
}

fn render_rejection(reject: &hq_bench::service::Reject) -> String {
    use hq_bench::service::Reject;
    match reject {
        Reject::QueueFull { depth } => format!("rejected: queue-full (depth {depth})"),
        Reject::CircuitOpen { class, retry_ms } => {
            format!("rejected: circuit-open for class '{class}' (retry in {retry_ms} ms)")
        }
        Reject::ShuttingDown => "rejected: shutting-down".to_string(),
        Reject::Unavailable(msg) => format!("rejected: unavailable: {msg}"),
        Reject::BadRequest(msg) => format!("rejected: bad-request: {msg}"),
        Reject::Shed {
            reason,
            retry_after_ms,
        } => format!("rejected: shed:{reason} (retry in {retry_after_ms} ms)"),
    }
}

/// Effective submit read timeout: `--timeout-ms`, else the
/// `HQ_SUBMIT_TIMEOUT_MS` environment variable, else two minutes —
/// generous enough for a worker restart plus journal replay, but a
/// wedged server can no longer hang `hyperq submit` forever.
fn submit_timeout_ms(cli: &Cli) -> u64 {
    cli.timeout_ms
        .or_else(|| {
            std::env::var("HQ_SUBMIT_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&ms| ms > 0)
        })
        .unwrap_or(120_000)
}

/// `hyperq submit`: talk to a running server (submit / status /
/// shutdown), or with `--direct` run the job in-process and print the
/// artifact bytes — the reference output the CI crash-recovery gate
/// compares served artifacts against.
fn cmd_submit(cli: &Cli) -> Result<String, String> {
    use hq_bench::service::{Client, Request, Response};
    if cli.direct {
        let artifact = hq_bench::service::run_job_direct(&job_spec_from(cli))?;
        // `main_with` prints with a trailing newline; hand it the
        // artifact minus its own final newline so stdout is byte-equal
        // to the artifact file.
        return Ok(artifact.trim_end_matches('\n').to_string());
    }
    let mut client = match (&cli.socket, &cli.tcp) {
        (Some(socket), _) => Client::connect(std::path::Path::new(socket))?,
        (None, Some(addr)) => Client::connect_tcp(addr)?,
        (None, None) => unreachable!("checked by parse_args"),
    };
    client.set_read_timeout(Some(std::time::Duration::from_millis(submit_timeout_ms(cli))))?;
    if cli.submit_status {
        return match client.call(&Request::Status)? {
            Response::Status(s) => {
                let mut out = format!(
                    "queued {} running {} completed {} rejected {} shed {}\nopen circuits: {}",
                    s.queued,
                    s.running,
                    s.completed,
                    s.rejected,
                    s.shed,
                    if s.open_circuits.is_empty() {
                        "none".to_string()
                    } else {
                        s.open_circuits.join(", ")
                    }
                );
                let occupancy = if s.dispatches > 0 {
                    s.dispatched_jobs as f64 / s.dispatches as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "\nbatch: dispatches {} jobs {} occupancy {:.2}",
                    s.dispatches, s.dispatched_jobs, occupancy
                ));
                let per_accept = if s.accepts > 0 {
                    s.fsyncs as f64 / s.accepts as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "\njournal: accepts {} fsyncs {} ({:.2} per accept) window {} solo {}",
                    s.accepts, s.fsyncs, per_accept, s.window_flushes, s.solo_flushes
                ));
                out.push_str(&format!(
                    "\nintegrity: cache_corrupt {} dedup_hits {}",
                    s.cache_corrupt, s.dedup_hits
                ));
                for t in &s.tenants {
                    out.push_str(&format!(
                        "\ntenant {}: queued {} running {} served {} shed {} p99 {} ms",
                        t.tenant, t.queued, t.running, t.served, t.shed, t.p99_ms
                    ));
                }
                Ok(out)
            }
            other => Err(format!("unexpected response: {other:?}")),
        };
    }
    if cli.submit_shutdown {
        return match client.call(&Request::Shutdown)? {
            Response::Bye { draining } => {
                Ok(format!("server shutting down, draining {draining} job(s)"))
            }
            other => Err(format!("unexpected response: {other:?}")),
        };
    }
    // Transient rejections (queue-full, shed) retry with jittered
    // backoff — honoring the server's retry-after hint — inside the
    // same budget that bounds the read timeout.
    let spec = job_spec_from(cli);
    let budget = std::time::Duration::from_millis(submit_timeout_ms(cli));
    let mut response = client.submit_with_retry(&spec, budget)?;
    if !cli.no_wait {
        if let Response::Accepted(id) = response {
            response = client.call(&Request::Wait(id))?;
        }
    }
    match response {
        Response::Accepted(id) => Ok(format!("accepted job {id}")),
        Response::Done(id, done) => Ok(render_done(id, &done)),
        Response::Rejected(reject) => Err(render_rejection(&reject)),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// `hyperq journal inspect FILE`: read-only dump of a journal — the
/// header/seal state, per-tenant accepted/done/unfinished counts, and
/// every record. Never writes, locks, or truncates, so it is safe to
/// point at a live server's journal.
fn cmd_journal_inspect(cli: &Cli) -> Result<String, String> {
    let path = cli.journal_file.as_deref().expect("checked by parse_args");
    let inspection = hq_bench::service::Journal::inspect(std::path::Path::new(path))
        .map_err(|e| format!("inspect {path}: {e}"))?;
    Ok(inspection.render())
}

/// `hyperq scrub [--repair]`: verify the journal, scenario cache and
/// artifact store end to end; with `--repair`, heal what can be healed
/// (truncate torn journal tails, quarantine mid-file corruption,
/// delete-and-re-execute damaged cache entries and artifacts). Exits
/// nonzero while damage remains, so `scrub --repair && scrub` is the
/// self-healing gate: the second pass must find a clean store.
fn cmd_scrub(cli: &Cli) -> Result<String, String> {
    let mut opts = hq_bench::service::ScrubOptions::from_results_dir();
    if let Some(j) = &cli.journal {
        opts.journal = j.into();
    }
    if let Some(a) = &cli.artifact_dir {
        opts.artifact_dir = a.into();
    }
    if let Some(c) = &cli.cache_dir {
        opts.cache_dir = c.into();
    }
    opts.repair = cli.repair;
    let report = hq_bench::service::scrub::scrub(&opts)?;
    let rendered = report.render();
    if report.clean() {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// `hyperq torture`: run a soak of generated service-burst cases under
/// joint I/O + network fault plans. The first invariant violation is
/// shrunk to a minimal case, written as a JSON repro (replayable with
/// `hyperq repro FILE`), and reported as an error.
fn cmd_torture(cli: &Cli) -> Result<String, String> {
    let repro_dir = cli
        .repro_dir
        .as_ref()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| hq_bench::util::out_dir().join("repro"));
    let report = hq_bench::torture::soak(cli.cases, cli.seed, &repro_dir, |_, _| {});
    let t = &report.totals;
    match report.failure {
        None => Ok(format!(
            "torture: {} case(s) passed — {} acked, {} resolved, {} unaccepted, {} disk fault(s), {} net fault(s) injected",
            report.cases, t.acked, t.resolved, t.unaccepted, t.io_faults, t.net_faults
        )),
        Some((kind, detail, path)) => Err(format!(
            "torture: case {} of {} FAILED ({kind})\n{detail}\nshrunk repro: {}",
            report.cases,
            cli.cases,
            path.display()
        )),
    }
}

/// Execute a parsed CLI invocation, returning the text to print.
pub fn execute(cli: Cli) -> Result<String, String> {
    match cli.command {
        Command::Run => cmd_run(&cli),
        Command::Compare => cmd_compare(&cli),
        Command::Trace => cmd_trace(&cli),
        Command::Autosched => cmd_autosched(&cli),
        Command::Faults => cmd_faults(&cli),
        Command::Repro => cmd_repro(&cli),
        Command::Serve => cmd_serve(&cli),
        Command::Submit => cmd_submit(&cli),
        Command::JournalInspect => cmd_journal_inspect(&cli),
        Command::Scrub => cmd_scrub(&cli),
        Command::Torture => cmd_torture(&cli),
        Command::Table3 => {
            geometry::validate_against_builders();
            Ok(geometry::render_markdown())
        }
        Command::Devices => Ok(cmd_devices()),
        Command::Help => Ok(USAGE.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::parse_args;

    fn run(s: &str) -> Result<String, String> {
        let args = s.split_whitespace().map(String::from).collect();
        execute(parse_args(args).expect("parse"))
    }

    #[test]
    fn run_command_reports_metrics() {
        let out = run("run -w nn*2+needle*2 --streams 4 --seed 3").unwrap();
        assert!(out.contains("makespan"));
        assert!(out.contains("energy"));
        assert!(out.contains("events"));
        assert!(out.contains("schedule: knearest#0"));
    }

    #[test]
    fn run_with_gantt_renders_lanes() {
        let out = run("run -w nn*2 --streams 2 --gantt").unwrap();
        assert!(out.contains("lane"));
    }

    #[test]
    fn compare_shows_three_configurations() {
        let out = run("compare -w nn*2+needle*2 --streams 4").unwrap();
        assert!(out.contains("serial"));
        assert!(out.contains("concurrent+memsync"));
        assert!(out.contains("vs serial"));
    }

    #[test]
    fn table3_and_devices_render() {
        assert!(run("table3").unwrap().contains("Fan2"));
        let d = run("devices").unwrap();
        assert!(d.contains("k20") && d.contains("208"));
    }

    #[test]
    fn autosched_runs_small_budget() {
        let out = run("autosched -w nn*2+needle*2 --streams 4 --budget 2").unwrap();
        assert!(out.contains("best found score"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run("help").unwrap().contains("USAGE"));
    }

    #[test]
    fn repro_replays_a_written_case_and_rejects_garbage() {
        use hq_bench::chaos;
        use hq_des::rng::DetRng;

        let dir = std::env::temp_dir().join(format!("hq_repro_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A generated case always passes; its repro must replay clean.
        let spec = chaos::gen_case(&mut DetRng::seed_from_u64(5));
        let path = dir.join("pass.json");
        std::fs::write(&path, chaos::case_to_json(&spec)).unwrap();
        let out = run(&format!("repro {}", path.display())).unwrap();
        assert!(out.contains("PASS"), "{out}");

        // A hang with no watchdog deadlocks; the repro reports FAIL but
        // the command itself succeeds (replaying a failure is the point).
        let mut bad = spec;
        bad.watchdog_us = 0;
        bad.kernel_hang_pm = 0;
        bad.copy_fail_pm = 0;
        bad.kernel_fault_pm = 0;
        bad.faults = vec![chaos::ScriptedFault {
            kind: FaultKind::KernelHang,
            app: 0,
            nth: 0,
        }];
        let path = dir.join("fail.json");
        std::fs::write(&path, chaos::case_to_json(&bad)).unwrap();
        let out = run(&format!("repro {}", path.display())).unwrap();
        assert!(out.contains("FAIL") && out.contains("Deadlock"), "{out}");

        // An unusable file is a command error.
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(run(&format!("repro {}", path.display())).is_err());
        assert!(run(&format!("repro {}", dir.join("missing.json").display())).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fermi_device_flag_works() {
        let out = run("run -w needle*2 --streams 2 --device fermi").unwrap();
        assert!(out.contains("makespan"));
    }

    #[test]
    fn run_with_faults_reports_damage_and_retry_recovers() {
        let failed = run("run -w nn*2 --streams 2 --faults kernel@1").unwrap();
        assert!(failed.contains("faults injected"), "{failed}");
        assert!(failed.contains("app outcomes:"), "{failed}");
        assert!(failed.contains("Failed"), "{failed}");
        let recovered =
            run("run -w nn*2 --streams 2 --faults kernel@1 --recovery retry").unwrap();
        assert!(recovered.contains("Retried"), "{recovered}");
    }

    #[test]
    fn faults_demo_compares_policies() {
        let out = run("faults --streams 4 --seed 5").unwrap();
        assert!(out.contains("failfast"), "{out}");
        assert!(out.contains("retry"), "{out}");
        assert!(out.contains("degrade"), "{out}");
        assert!(out.contains("faults injected"), "{out}");
    }

    #[test]
    fn submit_direct_prints_the_deterministic_artifact() {
        let a = run("submit --direct -w nn*2+needle*2 --streams 4 --seed 11").unwrap();
        let b = run("submit --direct -w nn*2+needle*2 --streams 4 --seed 11").unwrap();
        assert_eq!(a, b, "direct artifact must be deterministic");
        assert!(a.starts_with("hq-service-artifact v1\n"), "{a}");
        assert!(a.ends_with("end"), "newline re-added by main_with");
        // The artifact matches the service's own renderer byte-for-byte.
        let cli = parse_args(
            "submit --direct -w nn*2+needle*2 --streams 4 --seed 11"
                .split_whitespace()
                .map(String::from)
                .collect(),
        )
        .unwrap();
        let direct = hq_bench::service::run_job_direct(&super::job_spec_from(&cli)).unwrap();
        assert_eq!(format!("{a}\n"), direct);
        // A scripted-panic job has no artifact to print.
        assert!(run("submit --direct -w nn --panic").is_err());
    }

    #[test]
    fn journal_inspect_dumps_tenants_and_rejects_missing_files() {
        use hq_bench::service::{JobSpec, Journal};
        let dir = std::env::temp_dir().join(format!("hq_cli_inspect_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.wal");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            let mut spec = JobSpec {
                workload: vec![hq_workloads::apps::AppKind::Knearest],
                ..JobSpec::default()
            };
            spec.tenant = "acme".to_string();
            j.accept(1, &spec).unwrap();
            j.done(1, "ok", None).unwrap();
            spec.tenant = "globex".to_string();
            j.accept(2, &spec).unwrap();
        }
        let out = run(&format!("journal inspect {}", path.display())).unwrap();
        assert!(out.contains("tenant acme: accepted 1 done 1 unfinished 0"), "{out}");
        assert!(out.contains("tenant globex: accepted 1 done 0 unfinished 1"), "{out}");
        assert!(out.contains("sealed=no"), "{out}");
        assert!(run(&format!("journal inspect {}", dir.join("nope.wal").display())).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn submit_to_a_dead_socket_is_a_structured_error() {
        let err = run("submit --socket /tmp/hq-definitely-not-served.sock -w nn").unwrap_err();
        assert!(err.contains("connect"), "{err}");
        let err = run("submit --tcp 127.0.0.1:1 -w nn").unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }

    #[test]
    fn submit_timeout_precedence_is_flag_env_default() {
        let cli = |s: &str| {
            parse_args(s.split_whitespace().map(String::from).collect()).expect("parse")
        };
        std::env::remove_var("HQ_SUBMIT_TIMEOUT_MS");
        assert_eq!(submit_timeout_ms(&cli("submit --tcp a:1 -w nn")), 120_000);
        assert_eq!(
            submit_timeout_ms(&cli("submit --tcp a:1 -w nn --timeout-ms 77")),
            77
        );
        std::env::set_var("HQ_SUBMIT_TIMEOUT_MS", "5000");
        assert_eq!(submit_timeout_ms(&cli("submit --tcp a:1 -w nn")), 5_000);
        assert_eq!(
            submit_timeout_ms(&cli("submit --tcp a:1 -w nn --timeout-ms 77")),
            77,
            "the flag outranks the environment"
        );
        std::env::set_var("HQ_SUBMIT_TIMEOUT_MS", "not-a-number");
        assert_eq!(submit_timeout_ms(&cli("submit --tcp a:1 -w nn")), 120_000);
        std::env::remove_var("HQ_SUBMIT_TIMEOUT_MS");
    }

    #[test]
    fn fault_free_run_output_is_unchanged_by_recovery_flags() {
        let base = run("run -w nn*2 --streams 2 --seed 4").unwrap();
        let with_policy = run("run -w nn*2 --streams 2 --seed 4 --recovery retry").unwrap();
        assert_eq!(base, with_policy);
        assert!(!base.contains("faults injected"));
    }
}
