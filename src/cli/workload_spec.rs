//! The workload mini-language: `gaussian*4+needle*4` (or `nn`, `nw`,
//! `srad` aliases; a bare name means one instance).

use hq_workloads::apps::AppKind;
use hyperq_core as _; // workload specs feed the hyperq-core harness

/// Parse a workload specification into the application multiset.
///
/// Grammar: `term ("+" term)*` where `term := name ("*" count)?`.
pub fn parse_workload(spec: &str) -> Result<Vec<AppKind>, String> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Err("empty workload specification".into());
    }
    let mut kinds = Vec::new();
    for term in spec.split('+') {
        let term = term.trim();
        let (name, count) = match term.split_once('*') {
            Some((n, c)) => {
                let count: usize = c
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad count in term '{term}'"))?;
                (n.trim(), count)
            }
            None => (term, 1),
        };
        if count == 0 {
            return Err(format!("zero count in term '{term}'"));
        }
        if count > 512 {
            return Err(format!(
                "count {count} too large in term '{term}' (max 512)"
            ));
        }
        let kind = AppKind::parse(name).ok_or_else(|| {
            format!("unknown benchmark '{name}' (expected gaussian, needle/nw, srad, knearest/nn)")
        })?;
        kinds.extend(std::iter::repeat_n(kind, count));
    }
    Ok(kinds)
}

/// Render a workload multiset back into canonical spec form.
pub fn format_workload(kinds: &[AppKind]) -> String {
    let mut parts: Vec<(AppKind, usize)> = Vec::new();
    for &k in kinds {
        match parts.iter_mut().find(|(p, _)| *p == k) {
            Some((_, n)) => *n += 1,
            None => parts.push((k, 1)),
        }
    }
    parts
        .iter()
        .map(|(k, n)| {
            if *n == 1 {
                k.name().to_string()
            } else {
                format!("{}*{}", k.name(), n)
            }
        })
        .collect::<Vec<_>>()
        .join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counts_and_aliases() {
        let w = parse_workload("gaussian*2+nn*3").unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Gaussian).count(), 2);
        assert_eq!(w.iter().filter(|&&k| k == AppKind::Knearest).count(), 3);
    }

    #[test]
    fn bare_name_is_one_instance() {
        assert_eq!(parse_workload("srad").unwrap(), vec![AppKind::Srad]);
        assert_eq!(parse_workload("nw").unwrap(), vec![AppKind::Needle]);
    }

    #[test]
    fn whitespace_tolerated() {
        let w = parse_workload("  needle * 2 + srad ").unwrap();
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_workload("").is_err());
        assert!(parse_workload("bogus*2").is_err());
        assert!(parse_workload("needle*x").is_err());
        assert!(parse_workload("needle*0").is_err());
        assert!(parse_workload("needle*99999").is_err());
    }

    #[test]
    fn roundtrip_format() {
        let w = parse_workload("gaussian*2+needle").unwrap();
        assert_eq!(format_workload(&w), "gaussian*2+needle");
        let w2 = parse_workload(&format_workload(&w)).unwrap();
        assert_eq!(w, w2);
    }
}
