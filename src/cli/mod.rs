//! The `hyperq` command-line interface.
//!
//! A small, dependency-free CLI over the management framework:
//!
//! ```text
//! hyperq run      --workload gaussian*4+needle*4 --streams 8 --order round-robin
//! hyperq compare  --workload nn*8+srad*8 --streams 16
//! hyperq trace    --workload gaussian*2+needle*2 --streams 4 --chrome out.json
//! hyperq autosched --workload nn*4+needle*4 --objective energy
//! hyperq table3
//! hyperq devices
//! ```
//!
//! Argument parsing is hand-rolled (the whole grammar is a dozen flags)
//! and fully unit-tested; command logic lives in [`commands`].

pub mod args;
pub mod commands;
pub mod workload_spec;

pub use args::{parse_args, Cli, Command};

/// Entry point used by `src/main.rs`; returns the process exit code
/// (0 = success, 1 = run error, 2 = usage error). Every failure path
/// prints a single-line `error:` message — never a panic or backtrace.
pub fn main_with(args: Vec<String>) -> u8 {
    match parse_args(args) {
        Ok(cli) => match commands::execute(cli) {
            Ok(output) => {
                // Rust ignores SIGPIPE, so `hyperq ... | head` surfaces
                // a closed pipe as a write error here; `println!` would
                // turn that into a panic. Write explicitly and end the
                // process quietly instead. Resetting SIGPIPE to its
                // default disposition is not an option: a disconnecting
                // client would then kill a running `serve` outright.
                use std::io::Write;
                let mut stdout = std::io::stdout().lock();
                let _ = writeln!(stdout, "{output}").and_then(|()| stdout.flush());
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            2
        }
    }
}
