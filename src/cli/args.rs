//! Hand-rolled argument parsing for the `hyperq` CLI.

use hq_workloads::apps::AppKind;
use hyperq_core::harness::MemsyncMode;
use hyperq_core::ordering::ScheduleOrder;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
hyperq — Hyper-Q management framework on a simulated Tesla K20

USAGE:
  hyperq run       --workload SPEC [--streams N] [--order ORDER]
                   [--memsync off|enqueue|synced] [--serial] [--seed N]
                   [--device k20|k40|fermi] [--gantt] [--chrome FILE]
                   [--json FILE]
  hyperq compare   --workload SPEC [--streams N] [--seed N]
  hyperq trace     --workload SPEC [--streams N] [--chrome FILE] [--seed N]
  hyperq autosched --workload SPEC [--streams N] [--objective makespan|energy]
                   [--budget N] [--seed N]
  hyperq table3
  hyperq devices
  hyperq help

SPEC:    e.g. 'gaussian*4+needle*4' (aliases: nn, nw, srad_v2)
ORDER:   fifo | round-robin | shuffle | reverse-fifo | reverse-round-robin";

/// Which device preset to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DevicePreset {
    /// Tesla K20 (the paper's testbed).
    K20,
    /// Tesla K40 (larger Kepler part).
    K40,
    /// Fermi-class single-work-queue device.
    Fermi,
}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run one configuration and report metrics.
    Run,
    /// Serial vs concurrent vs +memsync comparison table.
    Compare,
    /// Emit the timeline (ASCII Gantt and optionally Chrome JSON).
    Trace,
    /// Greedy dynamic-order search (§VI).
    Autosched,
    /// Print Table III.
    Table3,
    /// List device presets.
    Devices,
    /// Print usage.
    Help,
}

/// Fully parsed CLI invocation.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
    /// Application multiset (empty for table3/devices/help).
    pub workload: Vec<AppKind>,
    /// Stream count `NS`.
    pub streams: u32,
    /// Launch order.
    pub order: ScheduleOrder,
    /// Memory-synchronization mode.
    pub memsync: MemsyncMode,
    /// Serialized baseline instead of concurrent execution.
    pub serial: bool,
    /// Simulation seed.
    pub seed: u64,
    /// Device preset.
    pub device: DevicePreset,
    /// Print the ASCII Gantt timeline after a `run`.
    pub gantt: bool,
    /// Write a Chrome trace JSON to this path.
    pub chrome: Option<String>,
    /// Write a RunSummary JSON to this path.
    pub json: Option<String>,
    /// Autosched objective: `true` = energy, `false` = makespan.
    pub objective_energy: bool,
    /// Autosched swap budget.
    pub budget: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: Command::Help,
            workload: Vec::new(),
            streams: 8,
            order: ScheduleOrder::NaiveFifo,
            memsync: MemsyncMode::Off,
            serial: false,
            seed: 0xC0FFEE,
            device: DevicePreset::K20,
            gantt: false,
            chrome: None,
            json: None,
            objective_energy: false,
            budget: 20,
        }
    }
}

fn parse_order(s: &str) -> Result<ScheduleOrder, String> {
    match s.to_ascii_lowercase().as_str() {
        "fifo" | "naive-fifo" | "naive" => Ok(ScheduleOrder::NaiveFifo),
        "round-robin" | "rr" => Ok(ScheduleOrder::RoundRobin),
        "shuffle" | "random" | "random-shuffle" => Ok(ScheduleOrder::RandomShuffle),
        "reverse-fifo" | "rfifo" => Ok(ScheduleOrder::ReverseFifo),
        "reverse-round-robin" | "rrr" => Ok(ScheduleOrder::ReverseRoundRobin),
        other => Err(format!("unknown order '{other}'")),
    }
}

fn parse_memsync(s: &str) -> Result<MemsyncMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(MemsyncMode::Off),
        "enqueue" => Ok(MemsyncMode::Enqueue),
        "synced" | "sync" | "on" => Ok(MemsyncMode::Synced),
        other => Err(format!("unknown memsync mode '{other}'")),
    }
}

fn parse_device(s: &str) -> Result<DevicePreset, String> {
    match s.to_ascii_lowercase().as_str() {
        "k20" => Ok(DevicePreset::K20),
        "k40" => Ok(DevicePreset::K40),
        "fermi" => Ok(DevicePreset::Fermi),
        other => Err(format!("unknown device '{other}'")),
    }
}

/// Parse argv (without the program name).
pub fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter().peekable();
    let Some(cmd) = it.next() else {
        return Err("missing subcommand".into());
    };
    cli.command = match cmd.as_str() {
        "run" => Command::Run,
        "compare" => Command::Compare,
        "trace" => Command::Trace,
        "autosched" => Command::Autosched,
        "table3" => Command::Table3,
        "devices" => Command::Devices,
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown subcommand '{other}'")),
    };
    let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" | "-w" => {
                cli.workload =
                    crate::cli::workload_spec::parse_workload(&value(&mut it, "--workload")?)?;
            }
            "--streams" | "-s" => {
                cli.streams = value(&mut it, "--streams")?
                    .parse()
                    .map_err(|_| "--streams needs an integer".to_string())?;
                if cli.streams == 0 || cli.streams > 1024 {
                    return Err("--streams must be in 1..=1024".into());
                }
            }
            "--order" | "-o" => cli.order = parse_order(&value(&mut it, "--order")?)?,
            "--memsync" | "-m" => cli.memsync = parse_memsync(&value(&mut it, "--memsync")?)?,
            "--serial" => cli.serial = true,
            "--seed" => {
                cli.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--device" | "-d" => cli.device = parse_device(&value(&mut it, "--device")?)?,
            "--gantt" => cli.gantt = true,
            "--chrome" => cli.chrome = Some(value(&mut it, "--chrome")?),
            "--json" => cli.json = Some(value(&mut it, "--json")?),
            "--objective" => {
                cli.objective_energy = match value(&mut it, "--objective")?.as_str() {
                    "energy" | "power" => true,
                    "makespan" | "time" | "performance" => false,
                    other => return Err(format!("unknown objective '{other}'")),
                };
            }
            "--budget" => {
                cli.budget = value(&mut it, "--budget")?
                    .parse()
                    .map_err(|_| "--budget needs an integer".to_string())?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let needs_workload = matches!(
        cli.command,
        Command::Run | Command::Compare | Command::Trace | Command::Autosched
    );
    if needs_workload && cli.workload.is_empty() {
        return Err("this subcommand requires --workload".into());
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_run_command() {
        let cli = parse_args(argv(
            "run --workload gaussian*2+nn*2 --streams 4 --order rr --memsync synced --seed 9 --device k40 --gantt",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.workload.len(), 4);
        assert_eq!(cli.streams, 4);
        assert_eq!(cli.order, ScheduleOrder::RoundRobin);
        assert_eq!(cli.memsync, MemsyncMode::Synced);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.device, DevicePreset::K40);
        assert!(cli.gantt);
    }

    #[test]
    fn defaults_are_sane() {
        let cli = parse_args(argv("run -w needle")).unwrap();
        assert_eq!(cli.streams, 8);
        assert_eq!(cli.order, ScheduleOrder::NaiveFifo);
        assert_eq!(cli.memsync, MemsyncMode::Off);
        assert!(!cli.serial);
    }

    #[test]
    fn workload_required_for_run_commands() {
        assert!(parse_args(argv("run")).is_err());
        assert!(parse_args(argv("compare")).is_err());
        assert!(parse_args(argv("table3")).is_ok());
        assert!(parse_args(argv("devices")).is_ok());
    }

    #[test]
    fn rejects_unknown_things() {
        assert!(parse_args(argv("frobnicate")).is_err());
        assert!(parse_args(argv("run -w needle --order sideways")).is_err());
        assert!(parse_args(argv("run -w needle --what")).is_err());
        assert!(parse_args(argv("run -w needle --streams 0")).is_err());
        assert!(parse_args(argv("run -w needle --streams")).is_err());
    }

    #[test]
    fn all_order_aliases() {
        for (alias, want) in [
            ("fifo", ScheduleOrder::NaiveFifo),
            ("rr", ScheduleOrder::RoundRobin),
            ("shuffle", ScheduleOrder::RandomShuffle),
            ("reverse-fifo", ScheduleOrder::ReverseFifo),
            ("rrr", ScheduleOrder::ReverseRoundRobin),
        ] {
            let cli = parse_args(argv(&format!("run -w nn --order {alias}"))).unwrap();
            assert_eq!(cli.order, want, "{alias}");
        }
    }

    #[test]
    fn autosched_flags() {
        let cli = parse_args(argv("autosched -w nn*4 --objective energy --budget 7")).unwrap();
        assert!(cli.objective_energy);
        assert_eq!(cli.budget, 7);
    }
}
