//! Hand-rolled argument parsing for the `hyperq` CLI.

use hq_gpu::prelude::FaultPlan;
use hq_workloads::apps::AppKind;
use hyperq_core::harness::MemsyncMode;
use hyperq_core::ordering::ScheduleOrder;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
hyperq — Hyper-Q management framework on a simulated Tesla K20

USAGE:
  hyperq run       --workload SPEC [--streams N] [--order ORDER]
                   [--memsync off|enqueue|synced] [--serial] [--seed N]
                   [--device k20|k40|fermi] [--gantt] [--chrome FILE]
                   [--json FILE]
  hyperq compare   --workload SPEC [--streams N] [--seed N]
  hyperq trace     --workload SPEC [--streams N] [--chrome FILE] [--seed N]
  hyperq autosched --workload SPEC [--streams N] [--objective makespan|energy]
                   [--budget N] [--seed N]
  hyperq faults    [--workload SPEC] [--streams N] [--faults FAULTS]
                   [--recovery failfast|retry|degrade] [--attempts N] [--seed N]
  hyperq repro     FILE
  hyperq serve     --socket PATH [--workers N] [--queue-depth N]
                   [--breaker-threshold K] [--breaker-cooldown-ms MS]
                   [--journal PATH] [--artifact-dir DIR] [--recover-only]
                   [--tenant-max-queued N] [--tenant-max-inflight N]
                   [--tenant-rate R] [--tenant-burst B] [--drr-quantum N]
                   [--brownout-threshold F] [--dispatch-batch K]
                   [--commit-window-us US]
  hyperq serve     --tcp ADDR --fleet N [--fleet-dir DIR] [--queue-depth N]
                   [--workers N] [--heartbeat-ms MS] [--max-restarts K]
                   [--breaker-threshold K] [--breaker-cooldown-ms MS]
                   [--tenant-max-queued N] [--tenant-max-inflight N]
                   [--tenant-rate R] [--brownout-threshold F]
                   [--dispatch-batch K] [--commit-window-us US]
  hyperq submit    --socket PATH|--tcp ADDR --workload SPEC [--streams N]
                   [--order ORDER] [--memsync MODE] [--serial] [--seed N]
                   [--device DEV] [--deadline-ms N] [--class NAME] [--panic]
                   [--tenant NAME] [--no-wait] [--timeout-ms MS]
  hyperq submit    --socket PATH|--tcp ADDR --status | --shutdown
  hyperq submit    --direct --workload SPEC [run flags]
  hyperq journal   inspect FILE
  hyperq scrub     [--repair] [--journal PATH] [--artifact-dir DIR]
                   [--cache-dir DIR]
  hyperq torture   [--cases N] [--seed N] [--repro-dir DIR]
  hyperq table3
  hyperq devices
  hyperq help

SPEC:    e.g. 'gaussian*4+needle*4' (aliases: nn, nw, srad_v2)
ORDER:   fifo | round-robin | shuffle | reverse-fifo | reverse-round-robin
FAULTS:  comma-separated clauses, e.g. 'copy@1,kernel@0:2,hang%0.05,seed=7'
         KIND@APP[:NTH] scripts the NTH (default 0) op of app APP;
         KIND%RATE injects probabilistically; KIND is copy|kernel|hang;
         seed=N / progress=F set the fault RNG seed and abort point.
         `run` accepts --faults/--recovery/--attempts too.";

/// Which device preset to simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DevicePreset {
    /// Tesla K20 (the paper's testbed).
    K20,
    /// Tesla K40 (larger Kepler part).
    K40,
    /// Fermi-class single-work-queue device.
    Fermi,
}

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run one configuration and report metrics.
    Run,
    /// Serial vs concurrent vs +memsync comparison table.
    Compare,
    /// Emit the timeline (ASCII Gantt and optionally Chrome JSON).
    Trace,
    /// Greedy dynamic-order search (§VI).
    Autosched,
    /// Fault-injection demo: same workload under each recovery policy.
    Faults,
    /// Replay a chaos-soak repro file under the invariant auditor.
    Repro,
    /// Long-running scenario server over a Unix-domain socket.
    Serve,
    /// Submit a job to (or query/stop) a running scenario server.
    Submit,
    /// Read-only dump of a journal file (`journal inspect FILE`).
    JournalInspect,
    /// Verify (and with `--repair`, heal) the journal, scenario cache
    /// and artifact store.
    Scrub,
    /// Service torture soak: bursts under joint I/O + network fault
    /// plans, with shrinking JSON repros.
    Torture,
    /// Print Table III.
    Table3,
    /// List device presets.
    Devices,
    /// Print usage.
    Help,
}

/// Fully parsed CLI invocation.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Subcommand.
    pub command: Command,
    /// Application multiset (empty for table3/devices/help).
    pub workload: Vec<AppKind>,
    /// Stream count `NS`.
    pub streams: u32,
    /// Launch order.
    pub order: ScheduleOrder,
    /// Memory-synchronization mode.
    pub memsync: MemsyncMode,
    /// Serialized baseline instead of concurrent execution.
    pub serial: bool,
    /// Simulation seed.
    pub seed: u64,
    /// Device preset.
    pub device: DevicePreset,
    /// Print the ASCII Gantt timeline after a `run`.
    pub gantt: bool,
    /// Write a Chrome trace JSON to this path.
    pub chrome: Option<String>,
    /// Write a RunSummary JSON to this path.
    pub json: Option<String>,
    /// Autosched objective: `true` = energy, `false` = makespan.
    pub objective_energy: bool,
    /// Autosched swap budget.
    pub budget: usize,
    /// Fault plan to inject (`--faults`), if any.
    pub faults: Option<FaultPlan>,
    /// Recovery policy selector (`--recovery`).
    pub recovery: RecoveryChoice,
    /// Max retry attempts per failed app (`--attempts`, retry policy).
    pub attempts: u32,
    /// Repro file to replay (`repro FILE`).
    pub repro_file: Option<String>,
    /// Unix-domain socket path (`serve` / `submit`).
    pub socket: Option<String>,
    /// TCP address of a fleet coordinator (`serve --tcp` / `submit --tcp`).
    pub tcp: Option<String>,
    /// Worker process count for fleet mode (`serve --fleet`, 0 = off).
    pub fleet: usize,
    /// Fleet state directory (`serve --fleet-dir`).
    pub fleet_dir: Option<String>,
    /// Supervisor heartbeat period in ms (`serve --heartbeat-ms`).
    pub heartbeat_ms: u64,
    /// In-place restarts per worker before rehashing (`--max-restarts`).
    pub max_restarts: u32,
    /// Journal path override (`serve --journal`).
    pub journal: Option<String>,
    /// Artifact directory override (`serve --artifact-dir`).
    pub artifact_dir: Option<String>,
    /// Client read timeout in ms (`submit --timeout-ms`; falls back to
    /// `HQ_SUBMIT_TIMEOUT_MS`, then a generous default).
    pub timeout_ms: Option<u64>,
    /// Server worker thread count (`serve --workers`).
    pub serve_workers: usize,
    /// Bounded job-queue depth (`serve --queue-depth`).
    pub queue_depth: usize,
    /// Consecutive failures that open a circuit (`--breaker-threshold`).
    pub breaker_threshold: u32,
    /// Open-circuit cooldown in ms (`--breaker-cooldown-ms`).
    pub breaker_cooldown_ms: u64,
    /// Recover the journal (replaying unfinished jobs) and exit.
    pub recover_only: bool,
    /// Per-job deadline in ms from acceptance (`submit --deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Circuit-breaker class override (`submit --class`).
    pub job_class: Option<String>,
    /// Submit a job that panics deliberately (`submit --panic`).
    pub scripted_panic: bool,
    /// Return after acceptance instead of waiting (`submit --no-wait`).
    pub no_wait: bool,
    /// Query server status instead of submitting (`submit --status`).
    pub submit_status: bool,
    /// Ask the server to shut down gracefully (`submit --shutdown`).
    pub submit_shutdown: bool,
    /// Run the job in-process and print the artifact (`submit --direct`).
    pub direct: bool,
    /// Tenant the submitted job is billed to (`submit --tenant`).
    pub tenant: Option<String>,
    /// Per-tenant queued-job quota (`serve --tenant-max-queued`, 0 = off).
    pub tenant_max_queued: usize,
    /// Per-tenant in-flight cap (`serve --tenant-max-inflight`, 0 = off).
    pub tenant_max_inflight: usize,
    /// Per-tenant admission rate in jobs/s (`serve --tenant-rate`, 0 = off).
    pub tenant_rate: f64,
    /// Token-bucket burst capacity (`serve --tenant-burst`, 0 = auto).
    pub tenant_burst: f64,
    /// DRR credits per scheduling visit (`serve --drr-quantum`).
    pub drr_quantum: u32,
    /// Brownout utilization threshold (`serve --brownout-threshold`, 0 = off).
    pub brownout_threshold: f64,
    /// Jobs a worker drains per wakeup as one K-lane batch
    /// (`serve --dispatch-batch`, 1 = solo dispatch).
    pub dispatch_batch: usize,
    /// Group-commit window in µs (`serve --commit-window-us`,
    /// 0 = one fsync per accept).
    pub commit_window_us: u64,
    /// Journal file to dump (`journal inspect FILE`).
    pub journal_file: Option<String>,
    /// Repair detected damage instead of only reporting it
    /// (`scrub --repair`).
    pub repair: bool,
    /// Scenario-cache directory override (`scrub --cache-dir`).
    pub cache_dir: Option<String>,
    /// Torture cases to run (`torture --cases`).
    pub cases: usize,
    /// Directory shrunk torture repros are written to
    /// (`torture --repro-dir`).
    pub repro_dir: Option<String>,
}

/// Which recovery policy the harness should apply to failed apps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryChoice {
    /// Surface failures without re-running anything.
    #[default]
    FailFast,
    /// Re-run each failed app alone with backoff.
    Retry,
    /// Re-run the whole workload serialized on one hardware queue.
    Degrade,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            command: Command::Help,
            workload: Vec::new(),
            streams: 8,
            order: ScheduleOrder::NaiveFifo,
            memsync: MemsyncMode::Off,
            serial: false,
            seed: 0xC0FFEE,
            device: DevicePreset::K20,
            gantt: false,
            chrome: None,
            json: None,
            objective_energy: false,
            budget: 20,
            faults: None,
            recovery: RecoveryChoice::FailFast,
            attempts: 2,
            repro_file: None,
            socket: None,
            tcp: None,
            fleet: 0,
            fleet_dir: None,
            heartbeat_ms: 200,
            max_restarts: 3,
            journal: None,
            artifact_dir: None,
            timeout_ms: None,
            serve_workers: 2,
            queue_depth: 16,
            breaker_threshold: 3,
            breaker_cooldown_ms: 250,
            recover_only: false,
            deadline_ms: None,
            job_class: None,
            scripted_panic: false,
            no_wait: false,
            submit_status: false,
            submit_shutdown: false,
            direct: false,
            tenant: None,
            tenant_max_queued: 0,
            tenant_max_inflight: 0,
            tenant_rate: 0.0,
            tenant_burst: 0.0,
            drr_quantum: 1,
            brownout_threshold: 0.0,
            dispatch_batch: 8,
            commit_window_us: 200,
            journal_file: None,
            repair: false,
            cache_dir: None,
            cases: 25,
            repro_dir: None,
        }
    }
}

/// Tenant names travel on the wire and into journal records, so keep
/// them to a conservative identifier charset.
fn validate_tenant(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 64 {
        return Err("--tenant must be 1..=64 characters".into());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(format!(
            "--tenant '{name}' may only contain letters, digits, '-', '_', '.'"
        ));
    }
    Ok(())
}

fn parse_recovery(s: &str) -> Result<RecoveryChoice, String> {
    match s.to_ascii_lowercase().as_str() {
        "failfast" | "fail-fast" | "none" => Ok(RecoveryChoice::FailFast),
        "retry" => Ok(RecoveryChoice::Retry),
        "degrade" | "serialize" => Ok(RecoveryChoice::Degrade),
        other => Err(format!("unknown recovery policy '{other}'")),
    }
}

fn parse_order(s: &str) -> Result<ScheduleOrder, String> {
    match s.to_ascii_lowercase().as_str() {
        "fifo" | "naive-fifo" | "naive" => Ok(ScheduleOrder::NaiveFifo),
        "round-robin" | "rr" => Ok(ScheduleOrder::RoundRobin),
        "shuffle" | "random" | "random-shuffle" => Ok(ScheduleOrder::RandomShuffle),
        "reverse-fifo" | "rfifo" => Ok(ScheduleOrder::ReverseFifo),
        "reverse-round-robin" | "rrr" => Ok(ScheduleOrder::ReverseRoundRobin),
        other => Err(format!("unknown order '{other}'")),
    }
}

fn parse_memsync(s: &str) -> Result<MemsyncMode, String> {
    match s.to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(MemsyncMode::Off),
        "enqueue" => Ok(MemsyncMode::Enqueue),
        "synced" | "sync" | "on" => Ok(MemsyncMode::Synced),
        other => Err(format!("unknown memsync mode '{other}'")),
    }
}

fn parse_device(s: &str) -> Result<DevicePreset, String> {
    match s.to_ascii_lowercase().as_str() {
        "k20" => Ok(DevicePreset::K20),
        "k40" => Ok(DevicePreset::K40),
        "fermi" => Ok(DevicePreset::Fermi),
        other => Err(format!("unknown device '{other}'")),
    }
}

/// Parse argv (without the program name).
pub fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter().peekable();
    let Some(cmd) = it.next() else {
        return Err("missing subcommand".into());
    };
    cli.command = match cmd.as_str() {
        "run" => Command::Run,
        "compare" => Command::Compare,
        "trace" => Command::Trace,
        "autosched" => Command::Autosched,
        "faults" => Command::Faults,
        "repro" => Command::Repro,
        "serve" => Command::Serve,
        "submit" => Command::Submit,
        "journal" => match it.next().as_deref() {
            Some("inspect") => Command::JournalInspect,
            Some(other) => return Err(format!("unknown journal action '{other}' (try 'inspect')")),
            None => return Err("journal requires an action: journal inspect FILE".into()),
        },
        "scrub" => Command::Scrub,
        "torture" => Command::Torture,
        "table3" => Command::Table3,
        "devices" => Command::Devices,
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown subcommand '{other}'")),
    };
    let value = |it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" | "-w" => {
                cli.workload =
                    crate::cli::workload_spec::parse_workload(&value(&mut it, "--workload")?)?;
            }
            "--streams" | "-s" => {
                cli.streams = value(&mut it, "--streams")?
                    .parse()
                    .map_err(|_| "--streams needs an integer".to_string())?;
                if cli.streams == 0 || cli.streams > 1024 {
                    return Err("--streams must be in 1..=1024".into());
                }
            }
            "--order" | "-o" => cli.order = parse_order(&value(&mut it, "--order")?)?,
            "--memsync" | "-m" => cli.memsync = parse_memsync(&value(&mut it, "--memsync")?)?,
            "--serial" => cli.serial = true,
            "--seed" => {
                cli.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--device" | "-d" => cli.device = parse_device(&value(&mut it, "--device")?)?,
            "--gantt" => cli.gantt = true,
            "--chrome" => cli.chrome = Some(value(&mut it, "--chrome")?),
            "--json" => cli.json = Some(value(&mut it, "--json")?),
            "--objective" => {
                cli.objective_energy = match value(&mut it, "--objective")?.as_str() {
                    "energy" | "power" => true,
                    "makespan" | "time" | "performance" => false,
                    other => return Err(format!("unknown objective '{other}'")),
                };
            }
            "--budget" => {
                cli.budget = value(&mut it, "--budget")?
                    .parse()
                    .map_err(|_| "--budget needs an integer".to_string())?;
            }
            "--faults" | "-f" => {
                cli.faults = Some(
                    FaultPlan::parse(&value(&mut it, "--faults")?)
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--recovery" | "-r" => cli.recovery = parse_recovery(&value(&mut it, "--recovery")?)?,
            "--attempts" => {
                cli.attempts = value(&mut it, "--attempts")?
                    .parse()
                    .map_err(|_| "--attempts needs an integer".to_string())?;
                if cli.attempts == 0 || cli.attempts > 16 {
                    return Err("--attempts must be in 1..=16".into());
                }
            }
            "--socket" => cli.socket = Some(value(&mut it, "--socket")?),
            "--tcp" => cli.tcp = Some(value(&mut it, "--tcp")?),
            "--fleet" => {
                cli.fleet = value(&mut it, "--fleet")?
                    .parse()
                    .map_err(|_| "--fleet needs an integer".to_string())?;
                if cli.fleet == 0 || cli.fleet > 16 {
                    return Err("--fleet must be in 1..=16".into());
                }
            }
            "--fleet-dir" => cli.fleet_dir = Some(value(&mut it, "--fleet-dir")?),
            "--heartbeat-ms" => {
                cli.heartbeat_ms = value(&mut it, "--heartbeat-ms")?
                    .parse()
                    .map_err(|_| "--heartbeat-ms needs an integer".to_string())?;
                if cli.heartbeat_ms == 0 {
                    return Err("--heartbeat-ms must be at least 1".into());
                }
            }
            "--max-restarts" => {
                cli.max_restarts = value(&mut it, "--max-restarts")?
                    .parse()
                    .map_err(|_| "--max-restarts needs an integer".to_string())?;
            }
            "--journal" => cli.journal = Some(value(&mut it, "--journal")?),
            "--artifact-dir" => cli.artifact_dir = Some(value(&mut it, "--artifact-dir")?),
            "--timeout-ms" => {
                let ms: u64 = value(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|_| "--timeout-ms needs an integer".to_string())?;
                if ms == 0 {
                    return Err("--timeout-ms must be at least 1".into());
                }
                cli.timeout_ms = Some(ms);
            }
            "--workers" => {
                cli.serve_workers = value(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
                if cli.serve_workers == 0 || cli.serve_workers > 64 {
                    return Err("--workers must be in 1..=64".into());
                }
            }
            "--queue-depth" => {
                cli.queue_depth = value(&mut it, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs an integer".to_string())?;
                if cli.queue_depth == 0 {
                    return Err("--queue-depth must be at least 1".into());
                }
            }
            "--breaker-threshold" => {
                cli.breaker_threshold = value(&mut it, "--breaker-threshold")?
                    .parse()
                    .map_err(|_| "--breaker-threshold needs an integer".to_string())?;
                if cli.breaker_threshold == 0 {
                    return Err("--breaker-threshold must be at least 1".into());
                }
            }
            "--breaker-cooldown-ms" => {
                cli.breaker_cooldown_ms = value(&mut it, "--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|_| "--breaker-cooldown-ms needs an integer".to_string())?;
            }
            "--recover-only" => cli.recover_only = true,
            "--deadline-ms" => {
                let ms: u64 = value(&mut it, "--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms needs an integer".to_string())?;
                // A zero deadline is dead on arrival and anything past a
                // day is a typo, not a deadline.
                if ms == 0 || ms > 86_400_000 {
                    return Err("--deadline-ms must be in 1..=86400000 (24h)".into());
                }
                cli.deadline_ms = Some(ms);
            }
            "--tenant" => {
                let name = value(&mut it, "--tenant")?;
                validate_tenant(&name)?;
                cli.tenant = Some(name);
            }
            "--tenant-max-queued" => {
                cli.tenant_max_queued = value(&mut it, "--tenant-max-queued")?
                    .parse()
                    .map_err(|_| "--tenant-max-queued needs an integer".to_string())?;
                if cli.tenant_max_queued == 0 || cli.tenant_max_queued > 100_000 {
                    return Err("--tenant-max-queued must be in 1..=100000".into());
                }
            }
            "--tenant-max-inflight" => {
                cli.tenant_max_inflight = value(&mut it, "--tenant-max-inflight")?
                    .parse()
                    .map_err(|_| "--tenant-max-inflight needs an integer".to_string())?;
                if cli.tenant_max_inflight == 0 || cli.tenant_max_inflight > 1024 {
                    return Err("--tenant-max-inflight must be in 1..=1024".into());
                }
            }
            "--tenant-rate" => {
                cli.tenant_rate = value(&mut it, "--tenant-rate")?
                    .parse()
                    .map_err(|_| "--tenant-rate needs a number (jobs/sec)".to_string())?;
                if !cli.tenant_rate.is_finite()
                    || cli.tenant_rate <= 0.0
                    || cli.tenant_rate > 1_000_000.0
                {
                    return Err("--tenant-rate must be in (0, 1000000] jobs/sec".into());
                }
            }
            "--tenant-burst" => {
                cli.tenant_burst = value(&mut it, "--tenant-burst")?
                    .parse()
                    .map_err(|_| "--tenant-burst needs a number".to_string())?;
                if !cli.tenant_burst.is_finite()
                    || cli.tenant_burst <= 0.0
                    || cli.tenant_burst > 1_000_000.0
                {
                    return Err("--tenant-burst must be in (0, 1000000]".into());
                }
            }
            "--drr-quantum" => {
                cli.drr_quantum = value(&mut it, "--drr-quantum")?
                    .parse()
                    .map_err(|_| "--drr-quantum needs an integer".to_string())?;
                if cli.drr_quantum == 0 || cli.drr_quantum > 64 {
                    return Err("--drr-quantum must be in 1..=64".into());
                }
            }
            "--dispatch-batch" => {
                cli.dispatch_batch = value(&mut it, "--dispatch-batch")?
                    .parse()
                    .map_err(|_| "--dispatch-batch needs an integer".to_string())?;
                if cli.dispatch_batch == 0 || cli.dispatch_batch > 64 {
                    return Err("--dispatch-batch must be in 1..=64".into());
                }
            }
            "--commit-window-us" => {
                cli.commit_window_us = value(&mut it, "--commit-window-us")?
                    .parse()
                    .map_err(|_| "--commit-window-us needs an integer".to_string())?;
                if cli.commit_window_us > 1_000_000 {
                    return Err("--commit-window-us must be at most 1000000 (1s)".into());
                }
            }
            "--brownout-threshold" => {
                cli.brownout_threshold = value(&mut it, "--brownout-threshold")?
                    .parse()
                    .map_err(|_| "--brownout-threshold needs a number in (0, 1]".to_string())?;
                if !cli.brownout_threshold.is_finite()
                    || cli.brownout_threshold <= 0.0
                    || cli.brownout_threshold > 1.0
                {
                    return Err("--brownout-threshold must be in (0, 1]".into());
                }
            }
            "--repair" => cli.repair = true,
            "--cache-dir" => cli.cache_dir = Some(value(&mut it, "--cache-dir")?),
            "--cases" => {
                cli.cases = value(&mut it, "--cases")?
                    .parse()
                    .map_err(|_| "--cases needs an integer".to_string())?;
                if cli.cases == 0 || cli.cases > 10_000 {
                    return Err("--cases must be in 1..=10000".into());
                }
            }
            "--repro-dir" => cli.repro_dir = Some(value(&mut it, "--repro-dir")?),
            "--class" => cli.job_class = Some(value(&mut it, "--class")?),
            "--panic" => cli.scripted_panic = true,
            "--no-wait" => cli.no_wait = true,
            "--status" => cli.submit_status = true,
            "--shutdown" => cli.submit_shutdown = true,
            "--direct" => cli.direct = true,
            other if cli.command == Command::Repro && !other.starts_with('-') => {
                if cli.repro_file.is_some() {
                    return Err("repro takes exactly one FILE".into());
                }
                cli.repro_file = Some(flag);
            }
            other if cli.command == Command::JournalInspect && !other.starts_with('-') => {
                if cli.journal_file.is_some() {
                    return Err("journal inspect takes exactly one FILE".into());
                }
                cli.journal_file = Some(flag);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let needs_workload = matches!(
        cli.command,
        Command::Run | Command::Compare | Command::Trace | Command::Autosched
    );
    if needs_workload && cli.workload.is_empty() {
        return Err("this subcommand requires --workload".into());
    }
    if cli.command == Command::Repro && cli.repro_file.is_none() {
        return Err("repro requires a FILE argument".into());
    }
    if cli.command == Command::JournalInspect && cli.journal_file.is_none() {
        return Err("journal inspect requires a FILE argument".into());
    }
    if cli.command == Command::Serve {
        if cli.fleet > 0 {
            if cli.tcp.is_none() {
                return Err("serve --fleet requires --tcp ADDR".into());
            }
            if cli.recover_only {
                return Err("--recover-only does not apply to fleet mode".into());
            }
        } else if cli.socket.is_none() {
            return Err("serve requires --socket (or --tcp with --fleet)".into());
        }
    }
    if cli.command == Command::Submit {
        if cli.direct && (cli.submit_status || cli.submit_shutdown) {
            return Err("--direct cannot be combined with --status/--shutdown".into());
        }
        if cli.socket.is_some() && cli.tcp.is_some() {
            return Err("submit takes --socket or --tcp, not both".into());
        }
        if !cli.direct && cli.socket.is_none() && cli.tcp.is_none() {
            return Err("submit requires --socket or --tcp (or --direct)".into());
        }
        let is_query = cli.submit_status || cli.submit_shutdown;
        if !is_query && cli.workload.is_empty() {
            return Err("submit requires --workload (or --status/--shutdown)".into());
        }
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_run_command() {
        let cli = parse_args(argv(
            "run --workload gaussian*2+nn*2 --streams 4 --order rr --memsync synced --seed 9 --device k40 --gantt",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.workload.len(), 4);
        assert_eq!(cli.streams, 4);
        assert_eq!(cli.order, ScheduleOrder::RoundRobin);
        assert_eq!(cli.memsync, MemsyncMode::Synced);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.device, DevicePreset::K40);
        assert!(cli.gantt);
    }

    #[test]
    fn defaults_are_sane() {
        let cli = parse_args(argv("run -w needle")).unwrap();
        assert_eq!(cli.streams, 8);
        assert_eq!(cli.order, ScheduleOrder::NaiveFifo);
        assert_eq!(cli.memsync, MemsyncMode::Off);
        assert!(!cli.serial);
    }

    #[test]
    fn workload_required_for_run_commands() {
        assert!(parse_args(argv("run")).is_err());
        assert!(parse_args(argv("compare")).is_err());
        assert!(parse_args(argv("table3")).is_ok());
        assert!(parse_args(argv("devices")).is_ok());
    }

    #[test]
    fn rejects_unknown_things() {
        assert!(parse_args(argv("frobnicate")).is_err());
        assert!(parse_args(argv("run -w needle --order sideways")).is_err());
        assert!(parse_args(argv("run -w needle --what")).is_err());
        assert!(parse_args(argv("run -w needle --streams 0")).is_err());
        assert!(parse_args(argv("run -w needle --streams")).is_err());
    }

    #[test]
    fn all_order_aliases() {
        for (alias, want) in [
            ("fifo", ScheduleOrder::NaiveFifo),
            ("rr", ScheduleOrder::RoundRobin),
            ("shuffle", ScheduleOrder::RandomShuffle),
            ("reverse-fifo", ScheduleOrder::ReverseFifo),
            ("rrr", ScheduleOrder::ReverseRoundRobin),
        ] {
            let cli = parse_args(argv(&format!("run -w nn --order {alias}"))).unwrap();
            assert_eq!(cli.order, want, "{alias}");
        }
    }

    #[test]
    fn autosched_flags() {
        let cli = parse_args(argv("autosched -w nn*4 --objective energy --budget 7")).unwrap();
        assert!(cli.objective_energy);
        assert_eq!(cli.budget, 7);
    }

    #[test]
    fn fault_flags_parse() {
        let cli = parse_args(argv(
            "run -w nn*2 --faults copy@1,kernel%0.1,seed=7 --recovery retry --attempts 3",
        ))
        .unwrap();
        let plan = cli.faults.expect("plan parsed");
        assert_eq!(plan.scripted.len(), 1);
        assert_eq!(plan.seed, 7);
        assert_eq!(cli.recovery, RecoveryChoice::Retry);
        assert_eq!(cli.attempts, 3);
    }

    #[test]
    fn faults_subcommand_needs_no_workload() {
        let cli = parse_args(argv("faults")).unwrap();
        assert_eq!(cli.command, Command::Faults);
        assert!(cli.workload.is_empty());
        assert_eq!(cli.recovery, RecoveryChoice::FailFast);
    }

    #[test]
    fn repro_takes_one_positional_file() {
        let cli = parse_args(argv("repro results/chaos_repro.json")).unwrap();
        assert_eq!(cli.command, Command::Repro);
        assert_eq!(cli.repro_file.as_deref(), Some("results/chaos_repro.json"));
        assert!(parse_args(argv("repro")).is_err());
        assert!(parse_args(argv("repro a.json b.json")).is_err());
        assert!(parse_args(argv("repro --bogus a.json")).is_err());
    }

    #[test]
    fn serve_flags_parse_and_socket_is_required() {
        let cli = parse_args(argv(
            "serve --socket /tmp/hq.sock --workers 3 --queue-depth 5 \
             --breaker-threshold 2 --breaker-cooldown-ms 100 --recover-only",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Serve);
        assert_eq!(cli.socket.as_deref(), Some("/tmp/hq.sock"));
        assert_eq!(cli.serve_workers, 3);
        assert_eq!(cli.queue_depth, 5);
        assert_eq!(cli.breaker_threshold, 2);
        assert_eq!(cli.breaker_cooldown_ms, 100);
        assert!(cli.recover_only);
        assert!(parse_args(argv("serve")).is_err());
        assert!(parse_args(argv("serve --socket s --workers 0")).is_err());
        assert!(parse_args(argv("serve --socket s --queue-depth 0")).is_err());
    }

    #[test]
    fn fleet_serve_flags_parse_and_validate() {
        let cli = parse_args(argv(
            "serve --tcp 127.0.0.1:0 --fleet 3 --fleet-dir /tmp/fleet \
             --heartbeat-ms 100 --max-restarts 1 --queue-depth 32",
        ))
        .unwrap();
        assert_eq!(cli.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.fleet, 3);
        assert_eq!(cli.fleet_dir.as_deref(), Some("/tmp/fleet"));
        assert_eq!(cli.heartbeat_ms, 100);
        assert_eq!(cli.max_restarts, 1);
        // Fleet mode needs the TCP front door; plain serve still needs
        // its socket; recover-only is single-process-only.
        assert!(parse_args(argv("serve --fleet 3")).is_err());
        assert!(parse_args(argv("serve --tcp 127.0.0.1:0")).is_err());
        assert!(parse_args(argv("serve --tcp a:1 --fleet 0")).is_err());
        assert!(parse_args(argv("serve --tcp a:1 --fleet 3 --recover-only")).is_err());
        // Journal/artifact overrides ride on plain serve.
        let cli = parse_args(argv(
            "serve --socket /tmp/s --journal /tmp/j.wal --artifact-dir /tmp/a",
        ))
        .unwrap();
        assert_eq!(cli.journal.as_deref(), Some("/tmp/j.wal"));
        assert_eq!(cli.artifact_dir.as_deref(), Some("/tmp/a"));
    }

    #[test]
    fn submit_tcp_and_timeout_flags() {
        let cli = parse_args(argv("submit --tcp 127.0.0.1:9911 -w nn --timeout-ms 250")).unwrap();
        assert_eq!(cli.tcp.as_deref(), Some("127.0.0.1:9911"));
        assert_eq!(cli.timeout_ms, Some(250));
        assert!(parse_args(argv("submit --tcp a:1 --socket s -w nn")).is_err());
        assert!(parse_args(argv("submit --tcp a:1 -w nn --timeout-ms 0")).is_err());
        assert!(parse_args(argv("submit --tcp a:1 --status")).is_ok());
    }

    #[test]
    fn submit_flags_parse_with_modes() {
        let cli = parse_args(argv(
            "submit --socket /tmp/hq.sock -w nn*2 --deadline-ms 500 --class burst --no-wait",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Submit);
        assert_eq!(cli.deadline_ms, Some(500));
        assert_eq!(cli.job_class.as_deref(), Some("burst"));
        assert!(cli.no_wait && !cli.scripted_panic);
        let cli = parse_args(argv("submit --socket s --status")).unwrap();
        assert!(cli.submit_status);
        let cli = parse_args(argv("submit --socket s --shutdown")).unwrap();
        assert!(cli.submit_shutdown);
        let cli = parse_args(argv("submit --direct -w needle --panic")).unwrap();
        assert!(cli.direct && cli.scripted_panic);
        // Missing socket (without --direct) or workload are usage errors.
        assert!(parse_args(argv("submit -w nn")).is_err());
        assert!(parse_args(argv("submit --socket s")).is_err());
        assert!(parse_args(argv("submit --direct --status")).is_err());
    }

    #[test]
    fn deadline_rejects_zero_and_absurd_values() {
        let cli = parse_args(argv("submit --socket s -w nn --deadline-ms 500")).unwrap();
        assert_eq!(cli.deadline_ms, Some(500));
        assert!(parse_args(argv("submit --socket s -w nn --deadline-ms 0")).is_err());
        assert!(parse_args(argv("submit --socket s -w nn --deadline-ms 86400001")).is_err());
        assert!(parse_args(argv("submit --socket s -w nn --deadline-ms soon")).is_err());
    }

    #[test]
    fn tenant_flag_parses_and_validates_charset() {
        let cli = parse_args(argv("submit --socket s -w nn --tenant team-a.prod_1")).unwrap();
        assert_eq!(cli.tenant.as_deref(), Some("team-a.prod_1"));
        assert!(parse_args(argv("submit --socket s -w nn --tenant bad:name")).is_err());
        assert!(parse_args(argv("submit --socket s -w nn --tenant")).is_err());
        let long = "x".repeat(65);
        assert!(parse_args(argv(&format!("submit --socket s -w nn --tenant {long}"))).is_err());
    }

    #[test]
    fn serve_tenant_quota_flags_parse_and_validate() {
        let cli = parse_args(argv(
            "serve --socket s --tenant-max-queued 8 --tenant-max-inflight 2 \
             --tenant-rate 5.5 --tenant-burst 3 --drr-quantum 4 --brownout-threshold 0.8",
        ))
        .unwrap();
        assert_eq!(cli.tenant_max_queued, 8);
        assert_eq!(cli.tenant_max_inflight, 2);
        assert!((cli.tenant_rate - 5.5).abs() < 1e-9);
        assert!((cli.tenant_burst - 3.0).abs() < 1e-9);
        assert_eq!(cli.drr_quantum, 4);
        assert!((cli.brownout_threshold - 0.8).abs() < 1e-9);
        // Zeros and out-of-range values are usage errors, not silent off.
        assert!(parse_args(argv("serve --socket s --tenant-max-queued 0")).is_err());
        assert!(parse_args(argv("serve --socket s --tenant-max-inflight 0")).is_err());
        assert!(parse_args(argv("serve --socket s --tenant-rate 0")).is_err());
        assert!(parse_args(argv("serve --socket s --tenant-rate -1")).is_err());
        assert!(parse_args(argv("serve --socket s --tenant-rate nan")).is_err());
        assert!(parse_args(argv("serve --socket s --drr-quantum 65")).is_err());
        assert!(parse_args(argv("serve --socket s --brownout-threshold 0")).is_err());
        assert!(parse_args(argv("serve --socket s --brownout-threshold 1.5")).is_err());
    }

    #[test]
    fn serve_batch_and_commit_window_flags_parse_and_validate() {
        let cli = parse_args(argv(
            "serve --socket s --dispatch-batch 16 --commit-window-us 500",
        ))
        .unwrap();
        assert_eq!(cli.dispatch_batch, 16);
        assert_eq!(cli.commit_window_us, 500);
        // 0 disables group commit (synchronous fsync per accept).
        let cli = parse_args(argv("serve --socket s --commit-window-us 0")).unwrap();
        assert_eq!(cli.commit_window_us, 0);
        // Defaults: batched dispatch and a small window are on.
        let cli = parse_args(argv("serve --socket s")).unwrap();
        assert_eq!(cli.dispatch_batch, 8);
        assert_eq!(cli.commit_window_us, 200);
        assert!(parse_args(argv("serve --socket s --dispatch-batch 0")).is_err());
        assert!(parse_args(argv("serve --socket s --dispatch-batch 65")).is_err());
        assert!(parse_args(argv("serve --socket s --commit-window-us 1000001")).is_err());
        assert!(parse_args(argv("serve --socket s --commit-window-us lots")).is_err());
    }

    #[test]
    fn journal_inspect_takes_one_positional_file() {
        let cli = parse_args(argv("journal inspect /tmp/hq.journal")).unwrap();
        assert_eq!(cli.command, Command::JournalInspect);
        assert_eq!(cli.journal_file.as_deref(), Some("/tmp/hq.journal"));
        assert!(parse_args(argv("journal")).is_err());
        assert!(parse_args(argv("journal inspect")).is_err());
        assert!(parse_args(argv("journal inspect a b")).is_err());
        assert!(parse_args(argv("journal vacuum f")).is_err());
    }

    #[test]
    fn scrub_parses_with_optional_overrides() {
        let cli = parse_args(argv("scrub")).unwrap();
        assert_eq!(cli.command, Command::Scrub);
        assert!(!cli.repair);
        let cli = parse_args(argv(
            "scrub --repair --journal /tmp/j.wal --artifact-dir /tmp/art --cache-dir /tmp/cache",
        ))
        .unwrap();
        assert!(cli.repair);
        assert_eq!(cli.journal.as_deref(), Some("/tmp/j.wal"));
        assert_eq!(cli.artifact_dir.as_deref(), Some("/tmp/art"));
        assert_eq!(cli.cache_dir.as_deref(), Some("/tmp/cache"));
    }

    #[test]
    fn torture_parses_cases_seed_and_repro_dir() {
        let cli = parse_args(argv("torture")).unwrap();
        assert_eq!(cli.command, Command::Torture);
        assert_eq!(cli.cases, 25);
        let cli = parse_args(argv("torture --cases 3 --seed 99 --repro-dir /tmp/repros")).unwrap();
        assert_eq!(cli.cases, 3);
        assert_eq!(cli.seed, 99);
        assert_eq!(cli.repro_dir.as_deref(), Some("/tmp/repros"));
        assert!(parse_args(argv("torture --cases 0")).is_err());
        assert!(parse_args(argv("torture --cases 20000")).is_err());
    }

    #[test]
    fn bad_fault_inputs_are_structured_errors() {
        assert!(parse_args(argv("run -w nn --faults bogus@1")).is_err());
        assert!(parse_args(argv("run -w nn --faults copy@oops")).is_err());
        assert!(parse_args(argv("run -w nn --recovery sometimes")).is_err());
        assert!(parse_args(argv("run -w nn --attempts 0")).is_err());
        assert!(parse_args(argv("run -w nn --attempts many")).is_err());
    }
}
