//! `hyperq` — command-line interface to the Hyper-Q reproduction.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(hyperq_repro::cli::main_with(args))
}
