//! `hyperq` — command-line interface to the Hyper-Q reproduction.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(hyperq_repro::cli::main_with(args));
}
