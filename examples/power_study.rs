//! Power and energy study: sample the simulated NVML sensor while the
//! {gaussian, needle} workload runs serialized, half-concurrent and
//! full-concurrent (the paper's Figure 9 view), and show that the
//! memory-synchronization technique adds no measurable power cost
//! (Figure 10).
//!
//! ```text
//! cargo run --release --example power_study
//! ```

use hyperq_repro::hyperq::harness::{
    pair_workload, run_workload, MemsyncMode, RunConfig, RunOutcome,
};
use hyperq_repro::hyperq::report::{joules, pct, watts, Table};
use hyperq_repro::workloads::apps::AppKind;

fn sparkline(out: &RunOutcome, width: usize) -> String {
    // Downsample the power trace into a unicode sparkline.
    let glyphs = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let samples = &out.power.samples;
    if samples.is_empty() {
        return String::new();
    }
    let max = out.power.peak_w.max(1.0);
    (0..width)
        .map(|i| {
            let idx = i * samples.len() / width;
            let v = samples[idx].1 / max;
            glyphs[((v * (glyphs.len() - 1) as f64).round() as usize).min(glyphs.len() - 1)]
        })
        .collect()
}

fn main() {
    let na = 8u32;
    let kinds = pair_workload(AppKind::Gaussian, AppKind::Needle, na as usize);

    let mut cfg_serial = RunConfig::serial();
    cfg_serial.sample_period = hyperq_repro::des::time::Dur::from_us(200);
    let cfg = |ns: u32, memsync| {
        let mut c = RunConfig::concurrent(ns).with_memsync(memsync);
        c.sample_period = hyperq_repro::des::time::Dur::from_us(200);
        c
    };

    let runs: Vec<(&str, RunOutcome)> = vec![
        ("serial", run_workload(&cfg_serial, &kinds).unwrap()),
        (
            "half-concurrent",
            run_workload(&cfg(na / 2, MemsyncMode::Off), &kinds).unwrap(),
        ),
        (
            "full-concurrent",
            run_workload(&cfg(na, MemsyncMode::Off), &kinds).unwrap(),
        ),
        (
            "full + memsync",
            run_workload(&cfg(na, MemsyncMode::Synced), &kinds).unwrap(),
        ),
    ];

    let base_energy = runs[0].1.energy_j();
    let mut table = Table::new(vec![
        "scenario",
        "makespan",
        "avg power",
        "peak power",
        "energy",
        "energy vs serial",
    ]);
    for (name, out) in &runs {
        table.row(vec![
            name.to_string(),
            out.makespan().to_string(),
            watts(out.avg_power_w()),
            watts(out.power.peak_w),
            joules(out.energy_j()),
            pct((base_energy - out.energy_j()) / base_energy),
        ]);
    }
    println!("{{gaussian, needle}}, NA = {na}, sensor oversampled at 5 kHz\n");
    println!("{}", table.to_text());
    println!("power traces (normalized to each run's peak):");
    for (name, out) in &runs {
        println!("  {name:<16} {}", sparkline(out, 72));
    }
}
