//! Oversubscription demo (the paper's Figure 5 scenario) plus the
//! functional layer: the same Rodinia algorithms the simulator
//! schedules are real implementations — this example also *solves* a
//! gaussian system and *aligns* sequences, validating the results.
//!
//! ```text
//! cargo run --release --example oversubscription
//! ```

use hyperq_repro::des::time::Dur;
use hyperq_repro::gpu::prelude::*;
use hyperq_repro::workloads::gaussian::{Gaussian, GaussianConfig};
use hyperq_repro::workloads::needle::{Needle, NeedleConfig};

fn main() {
    // ---- Device-level: five oversubscribing grids on five streams ----
    let mut sim = GpuSim::new(DeviceConfig::tesla_k20(), HostConfig::deterministic(), 7);
    let streams = sim.create_streams(5);
    let kernels = [
        KernelDesc::new("needle_cuda_shared_1", 89u32, 32u32, Dur::from_us(150)).with_smem(8712),
        KernelDesc::new("needle_cuda_shared_2", 88u32, 32u32, Dur::from_us(150)).with_smem(8712),
        KernelDesc::new("Fan1", 1u32, 512u32, Dur::from_us(400)),
        KernelDesc::new("Fan1", 1u32, 512u32, Dur::from_us(400)),
        KernelDesc::new("Fan2", (32u32, 32u32), (16u32, 16u32), Dur::from_us(10)),
    ];
    let total_blocks: u32 = kernels.iter().map(|k| k.blocks()).sum();
    for (i, k) in kernels.into_iter().enumerate() {
        let p = Program::builder(format!("stream{}", 17 + i))
            .launch(k)
            .build();
        sim.add_app(p, streams[i]);
    }
    let result = sim.run().expect("run");
    println!(
        "requested {total_blocks} thread blocks (device max resident: {})",
        DeviceConfig::tesla_k20().max_resident_blocks()
    );
    println!("{}", result.trace.render_gantt(90));
    println!(
        "makespan {} — all five grids overlapped under the LEFTOVER policy\n",
        result.makespan
    );

    // ---- Functional layer: the algorithms actually compute ----
    let mut g = Gaussian::generate(GaussianConfig { n: 128, seed: 42 });
    let x = g.solve();
    println!(
        "gaussian: solved a 128x128 system via Fan1/Fan2 decomposition, \
         residual = {:.2e}",
        g.residual(&x)
    );

    let cfg = NeedleConfig {
        n: 128,
        penalty: 10,
        seed: 42,
    };
    let mut nd = Needle::generate(cfg);
    nd.run_kernelized();
    let reference = Needle::reference_dp(cfg);
    assert_eq!(nd.items, reference, "tiled sweep matches the full DP");
    println!(
        "needle:   aligned two 128-mers via the shared_1/shared_2 tile \
         sweep, score = {}",
        nd.score()
    );
}
