//! Heterogeneous pairing study: run every pair of the four Rodinia
//! ports and report the concurrency improvement over serialized
//! execution — a small-scale rendition of the paper's Figure 4.
//!
//! ```text
//! cargo run --release --example heterogeneous_pairs
//! ```

use hyperq_repro::hyperq::harness::{pair_workload, run_workload, RunConfig};
use hyperq_repro::hyperq::metrics::improvement;
use hyperq_repro::hyperq::report::{pct, Table};
use hyperq_repro::workloads::apps::AppKind;

fn main() {
    let na = 8;
    let mut table = Table::new(vec![
        "pair",
        "serial",
        "half-concurrent",
        "full-concurrent",
        "half gain",
        "full gain",
    ]);
    for (x, y) in AppKind::pairs() {
        let kinds = pair_workload(x, y, na);
        let serial = run_workload(&RunConfig::serial(), &kinds).expect("serial");
        let half = run_workload(&RunConfig::concurrent(na as u32 / 2), &kinds).expect("half");
        let full = run_workload(&RunConfig::concurrent(na as u32), &kinds).expect("full");
        table.row(vec![
            format!("{x}+{y}"),
            serial.makespan().to_string(),
            half.makespan().to_string(),
            full.makespan().to_string(),
            pct(improvement(serial.makespan(), half.makespan())),
            pct(improvement(serial.makespan(), full.makespan())),
        ]);
    }
    println!("NA = {na} applications per workload, Tesla K20 (simulated)\n");
    println!("{}", table.to_text());
    println!("Run `cargo run --release -p hq-bench --bin fig04_lazy_policy` for the full paper-scale sweep.");
}
