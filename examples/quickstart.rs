//! Quickstart: schedule a small heterogeneous workload on the simulated
//! Tesla K20, compare serialized vs. Hyper-Q concurrent execution, and
//! apply the paper's two techniques (memory-transfer synchronization
//! and launch reordering).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyperq_repro::hyperq::harness::{pair_workload, run_workload, MemsyncMode, RunConfig};
use hyperq_repro::hyperq::metrics::improvement;
use hyperq_repro::hyperq::ordering::ScheduleOrder;
use hyperq_repro::hyperq::report::pct;
use hyperq_repro::workloads::apps::AppKind;

fn main() {
    // 8 applications: 4x gaussian + 4x needle (paper Fig. 3's Ω).
    let kinds = pair_workload(AppKind::Gaussian, AppKind::Needle, 8);

    // 1. Serialized baseline: one stream, one application at a time.
    let serial = run_workload(&RunConfig::serial(), &kinds).expect("serial run");
    println!("serialized execution:        {}", serial.makespan());

    // 2. Full-concurrent: one stream per application; Hyper-Q and the
    //    LEFTOVER policy pack the fragments.
    let conc = run_workload(&RunConfig::concurrent(8), &kinds).expect("concurrent run");
    println!(
        "full-concurrent (Hyper-Q):   {}   ({} vs serial)",
        conc.makespan(),
        pct(improvement(serial.makespan(), conc.makespan()))
    );

    // 3. Add memory-transfer synchronization (the pseudo-burst mutex).
    let sync = run_workload(
        &RunConfig::concurrent(8).with_memsync(MemsyncMode::Synced),
        &kinds,
    )
    .expect("memsync run");
    println!(
        "+ memory synchronization:    {}   ({} vs serial)",
        sync.makespan(),
        pct(improvement(serial.makespan(), sync.makespan()))
    );

    // 4. Try a different launch order on top.
    let ordered = run_workload(
        &RunConfig::concurrent(8)
            .with_memsync(MemsyncMode::Synced)
            .with_order(ScheduleOrder::RoundRobin),
        &kinds,
    )
    .expect("ordered run");
    println!(
        "+ round-robin launch order:  {}   ({} vs serial)",
        ordered.makespan(),
        pct(improvement(serial.makespan(), ordered.makespan()))
    );

    println!(
        "\nenergy: serial {:.2} J -> best concurrent {:.2} J ({})",
        serial.energy_j(),
        ordered.energy_j().min(sync.energy_j()),
        pct((serial.energy_j() - ordered.energy_j().min(sync.energy_j())) / serial.energy_j())
    );
}
