//! Cross-crate integration tests: drive the full pipeline — workload
//! programs → Hyper-Q management framework → simulated K20 → power
//! monitor → metrics — through the public API of the umbrella crate.

use hyperq_repro::des::time::Dur;
use hyperq_repro::gpu::types::Dir;
use hyperq_repro::hyperq::autosched::{AutoScheduler, Objective};
use hyperq_repro::hyperq::harness::{
    homogeneous_workload, pair_workload, run_workload, MemsyncMode, RunConfig,
};
use hyperq_repro::hyperq::metrics::{expected_pair_le, improvement};
use hyperq_repro::hyperq::ordering::ScheduleOrder;
use hyperq_repro::workloads::apps::AppKind;
use hyperq_repro::workloads::geometry;

#[test]
fn full_pipeline_every_pair_beats_serial() {
    // Use transfer/latency-bound kinds at small NA so the test is fast
    // in debug builds; gaussian is covered by the release-mode bench
    // experiments.
    let kinds_sets: Vec<Vec<AppKind>> = vec![
        pair_workload(AppKind::Needle, AppKind::Knearest, 4),
        pair_workload(AppKind::Needle, AppKind::Srad, 4),
        pair_workload(AppKind::Knearest, AppKind::Srad, 4),
    ];
    for kinds in kinds_sets {
        let serial = run_workload(&RunConfig::serial(), &kinds).unwrap();
        let conc = run_workload(&RunConfig::concurrent(4), &kinds).unwrap();
        let imp = improvement(serial.makespan(), conc.makespan());
        assert!(
            imp > 0.10,
            "{kinds:?}: expected >10% improvement, got {imp:.3}"
        );
        // Power and energy flow through the same pipeline.
        assert!(conc.energy_j() < serial.energy_j());
        assert!(conc.avg_power_w() >= serial.avg_power_w() * 0.95);
    }
}

#[test]
fn memsync_reduces_le_toward_expectation() {
    let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 6);
    let base = run_workload(&RunConfig::concurrent(6), &kinds).unwrap();
    let sync = run_workload(
        &RunConfig::concurrent(6).with_memsync(MemsyncMode::Synced),
        &kinds,
    )
    .unwrap();
    let expected = expected_pair_le(
        AppKind::Needle,
        AppKind::Knearest,
        &RunConfig::concurrent(1),
    );
    let le_base = base.mean_le(Dir::HtoD).unwrap();
    let le_sync = sync.mean_le(Dir::HtoD).unwrap();
    assert!(le_base > le_sync, "memsync must reduce Le");
    // Synced Le lands within ~2.5x of the uncontended expectation while
    // the default is inflated several-fold.
    assert!(
        le_sync.as_ns() < 5 * expected.as_ns() / 2,
        "synced Le {le_sync} too far above expected {expected}"
    );
    assert!(
        le_base.as_ns() > 2 * expected.as_ns(),
        "baseline Le {le_base} should inflate over expected {expected}"
    );
}

#[test]
fn all_five_orders_complete_and_are_permutations() {
    let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 6);
    for order in ScheduleOrder::ALL {
        let out = run_workload(&RunConfig::concurrent(6).with_order(order), &kinds).unwrap();
        assert_eq!(out.result.apps.len(), 6, "{order}");
        assert_eq!(out.schedule.len(), 6, "{order}");
        let needles = out.schedule.iter().filter(|l| l.contains("needle")).count();
        assert_eq!(needles, 3, "{order} must keep 3 needle instances");
    }
}

#[test]
fn homogeneous_workloads_scale_sublinearly_when_underutilizing() {
    // 1 vs 4 copies of knearest (tiny kernels): 4 concurrent copies
    // must cost far less than 4x one copy.
    let one = run_workload(
        &RunConfig::concurrent(1),
        &homogeneous_workload(AppKind::Knearest, 1),
    )
    .unwrap();
    let four = run_workload(
        &RunConfig::concurrent(4),
        &homogeneous_workload(AppKind::Knearest, 4),
    )
    .unwrap();
    let ratio = four.makespan().as_ns() as f64 / one.makespan().as_ns() as f64;
    assert!(ratio < 3.0, "4 concurrent copies cost {ratio:.2}x one copy");
}

#[test]
fn serialized_execution_is_seed_stable() {
    let kinds = pair_workload(AppKind::Needle, AppKind::Srad, 4);
    let a = run_workload(&RunConfig::serial().with_seed(7), &kinds).unwrap();
    let b = run_workload(&RunConfig::serial().with_seed(7), &kinds).unwrap();
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.energy_j(), b.energy_j());
}

#[test]
fn autoscheduler_runs_through_public_api() {
    let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 4);
    let sched = AutoScheduler {
        objective: Objective::Makespan,
        swap_budget: 3,
        seed: 5,
    };
    let res = sched.optimize(&RunConfig::concurrent(4), &kinds);
    assert!(res.best_score <= res.canonical_score);
    assert!(res.outcome.makespan() > Dur::ZERO);
}

#[test]
fn table3_validates_through_umbrella_crate() {
    geometry::validate_against_builders();
    assert_eq!(geometry::table3().len(), 7);
}

#[test]
fn trace_lanes_match_stream_assignment() {
    let kinds = pair_workload(AppKind::Knearest, AppKind::Needle, 4);
    let out = run_workload(&RunConfig::concurrent(2).with_trace(true), &kinds).unwrap();
    hyperq_repro::gpu::validate::assert_valid(&out.result);
    // 4 apps round-robin onto 2 streams: lanes 0 and 1 both carry spans.
    let lanes: std::collections::BTreeSet<u32> =
        out.result.trace.spans().iter().map(|s| s.lane).collect();
    assert_eq!(lanes.into_iter().collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn oversubscribed_memory_is_rejected_cleanly() {
    // 60 srad instances × 6 MB device footprint ≈ 360 MB fits; but the
    // device check must trip when we blow past 5 GB.
    let kinds = homogeneous_workload(AppKind::Srad, 900);
    let err = run_workload(&RunConfig::concurrent(32), &kinds);
    assert!(err.is_err(), "900 srad apps must exceed 5 GB device memory");
}

#[test]
fn enqueue_only_mutex_is_not_enough_synced_is() {
    // The paper holds the transfer mutex until the transfers have
    // *completed* ("all of the memory transfers for an application are
    // completed before an application on another stream can take
    // control of the copy queue"). A mutex released right after the
    // enqueues does not stop the copy engine from interleaving streams;
    // this test pins that distinction.
    let kinds = pair_workload(AppKind::Needle, AppKind::Knearest, 6);
    let base = run_workload(&RunConfig::concurrent(6), &kinds).unwrap();
    let enq = run_workload(
        &RunConfig::concurrent(6).with_memsync(MemsyncMode::Enqueue),
        &kinds,
    )
    .unwrap();
    let synced = run_workload(
        &RunConfig::concurrent(6).with_memsync(MemsyncMode::Synced),
        &kinds,
    )
    .unwrap();
    let le = |o: &hyperq_repro::hyperq::harness::RunOutcome| o.mean_le(Dir::HtoD).unwrap().as_ns();
    assert!(
        le(&synced) * 2 < le(&base),
        "synced must at least halve Le: {} vs {}",
        le(&synced),
        le(&base)
    );
    assert!(
        le(&enq) > le(&synced),
        "enqueue-only must be weaker than synced: {} vs {}",
        le(&enq),
        le(&synced)
    );
}
