//! End-to-end tests for the resilient scenario service: journal crash
//! recovery (including a truncation sweep over every byte of the final
//! record), queue backpressure, circuit breaking, deadline
//! cancellation, panic isolation and graceful shutdown over a real
//! Unix-domain socket.

use hq_bench::service::protocol::{read_frame, write_frame};
use hq_bench::service::{
    run_job_direct, Client, JobDone, Journal, JobSpec, Reject, Request, Response, Server,
    ServeOptions,
};
use hq_workloads::apps::AppKind;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tests mutate the process-global `HQ_RESULTS` (the scenario cache
/// root); each test holds this for its whole body.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(name: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("hq-service-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test dir");
        std::env::set_var("HQ_RESULTS", &root);
        TestDirs { root }
    }

    fn opts(&self) -> ServeOptions {
        let mut opts = ServeOptions::new(self.root.join("hq.sock"));
        opts.journal = self.root.join("journal").join("service.wal");
        opts.artifact_dir = self.root.join("service");
        opts
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        std::env::remove_var("HQ_RESULTS");
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        seed,
        ..JobSpec::default()
    }
}

/// Satellite: append N jobs, truncate the journal at every byte offset
/// of the final record, replay, and assert (a) no panic, (b) completed
/// jobs are not re-run, (c) unfinished jobs re-execute to
/// byte-identical artifacts.
#[test]
fn journal_truncation_sweep_recovers_at_every_offset() {
    let _env = env_lock();
    let dirs = TestDirs::new("truncation-sweep");
    let opts = dirs.opts();

    // Journal three accepted jobs; job 1 completed, jobs 2 and 3 not.
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("fresh journal");
        j.accept(1, &spec(1)).unwrap();
        j.done(1, "ok", None).unwrap();
        j.accept(2, &spec(2)).unwrap();
        j.accept(3, &spec(3)).unwrap();
    }
    let full = std::fs::read(&opts.journal).expect("journal bytes");
    // The final record is job 3's accept line.
    let last_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("final record start");

    let direct2 = run_job_direct(&spec(2)).expect("direct job 2");
    let direct3 = run_job_direct(&spec(3)).expect("direct job 3");

    for cut in last_start..=full.len() {
        std::fs::write(&opts.journal, &full[..cut]).unwrap();
        let _ = std::fs::remove_dir_all(&opts.artifact_dir);
        let (_, report) = Server::new(opts.clone()).expect("recovery must not fail");

        let replayed: Vec<u64> = report.replayed.iter().map(|(id, _)| *id).collect();
        assert!(
            !replayed.contains(&1),
            "cut {cut}: completed job 1 must not re-run"
        );
        assert!(
            replayed.contains(&2),
            "cut {cut}: job 2's record is intact and must replay"
        );
        let torn = cut < full.len();
        assert_eq!(
            replayed.contains(&3),
            !torn,
            "cut {cut}: job 3 replays iff its record survived whole"
        );
        let expect_torn = if torn { (cut - last_start) as u64 } else { 0 };
        assert_eq!(report.torn_bytes, expect_torn, "cut {cut}");

        assert!(
            !opts.artifact_dir.join("job-1.out").exists(),
            "cut {cut}: job 1 must produce no artifact"
        );
        let got2 = std::fs::read_to_string(opts.artifact_dir.join("job-2.out"))
            .expect("job 2 artifact");
        assert_eq!(got2, direct2, "cut {cut}: job 2 artifact not byte-identical");
        if !torn {
            let got3 = std::fs::read_to_string(opts.artifact_dir.join("job-3.out"))
                .expect("job 3 artifact");
            assert_eq!(got3, direct3, "cut {cut}: job 3 artifact not byte-identical");
        }

        // Recovery marked the replayed jobs done: reopening finds
        // nothing left to do.
        let (_, rec) = Journal::open(&opts.journal).expect("reopen");
        assert!(
            rec.unfinished.is_empty(),
            "cut {cut}: replay must leave no unfinished jobs"
        );
    }
}

/// A crash *during* replay (simulated by recovering, then restoring an
/// older journal plus the new done-markers) never loses or duplicates
/// work: done markers appended by replay are honoured on the next pass.
#[test]
fn replay_is_resumable_and_marks_jobs_done() {
    let _env = env_lock();
    let dirs = TestDirs::new("replay-marks");
    let opts = dirs.opts();
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("fresh journal");
        j.accept(1, &spec(21)).unwrap();
        j.accept(2, &spec(22)).unwrap();
    }
    let (_, first) = Server::new(opts.clone()).expect("first recovery");
    assert_eq!(first.replayed.len(), 2);
    // Second recovery of the same journal: everything already done.
    let (_, second) = Server::new(opts.clone()).expect("second recovery");
    assert!(second.replayed.is_empty(), "{second:?}");
    assert_eq!(second.already_done, 2);
    // Jobs that carried a deadline are conservatively expired on
    // replay, not executed.
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("journal");
        let deadline_spec = JobSpec {
            deadline_ms: Some(60_000),
            ..spec(23)
        };
        j.accept(7, &deadline_spec).unwrap();
    }
    let (_, third) = Server::new(opts.clone()).expect("third recovery");
    assert_eq!(third.replayed, vec![(7, "deadline".to_string())]);
    assert!(!opts.artifact_dir.join("job-7.out").exists());
}

/// Backpressure and shutdown at the state-machine level (no workers
/// running, so the queue cannot drain underneath the test).
#[test]
fn bounded_queue_rejects_and_shutdown_drains() {
    let _env = env_lock();
    let dirs = TestDirs::new("backpressure");
    let mut opts = dirs.opts();
    opts.queue_depth = 2;
    let (server, _) = Server::new(opts).expect("server");

    assert_eq!(server.handle(Request::Submit(spec(1))), Response::Accepted(1));
    assert_eq!(server.handle(Request::Submit(spec(2))), Response::Accepted(2));
    assert_eq!(
        server.handle(Request::Submit(spec(3))),
        Response::Rejected(Reject::QueueFull { depth: 2 }),
        "third submit must hit the bound"
    );
    match server.handle(Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.queued, 2);
            assert_eq!(s.rejected, 1);
        }
        other => panic!("expected status, got {other:?}"),
    }
    // Waiting for an id that was never accepted is a structured error.
    assert!(matches!(
        server.handle(Request::Wait(99)),
        Response::Rejected(Reject::BadRequest(_))
    ));
    // Shutdown reports the backlog and rejects all further submits.
    assert_eq!(server.handle(Request::Shutdown), Response::Bye { draining: 2 });
    assert_eq!(
        server.handle(Request::Submit(spec(4))),
        Response::Rejected(Reject::ShuttingDown)
    );
}

fn connect_with_retry(socket: &Path) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(socket) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never bound {}", socket.display());
}

/// Full service lifecycle over a real socket: healthy jobs, deadline
/// cancellation, panic isolation, the per-class circuit breaker, and a
/// graceful shutdown that seals the journal.
#[test]
fn service_over_socket_survives_panics_deadlines_and_breaker_trips() {
    let _env = env_lock();
    let dirs = TestDirs::new("socket-e2e");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.breaker_threshold = 1;
    opts.breaker_cooldown_ms = 100;
    let socket = opts.socket.clone();
    let journal_path = opts.journal.clone();
    let artifact_dir = opts.artifact_dir.clone();

    let (server, report) = Server::new(opts).expect("server");
    assert!(report.replayed.is_empty());
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    // Healthy job: served artifact is byte-identical to a direct run.
    let healthy = spec(31);
    match client.submit_and_wait(healthy.clone()).expect("submit") {
        Response::Done(id, JobDone::Ok { artifact }) => {
            let served = std::fs::read_to_string(&artifact).expect("artifact file");
            assert_eq!(served, run_job_direct(&healthy).unwrap());
            assert!(artifact.ends_with(&format!("job-{id}.out")));
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // Deadline 0 expires before the worker can start it.
    let doomed = JobSpec {
        deadline_ms: Some(0),
        ..spec(32)
    };
    match client.submit_and_wait(doomed).expect("submit") {
        Response::Done(_, JobDone::DeadlineExceeded) => {}
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }

    // A panicking job answers `panic` — and opens its class's breaker
    // (threshold 1) without taking the worker down.
    let bomb = JobSpec {
        scripted_panic: true,
        class: Some("bombs".to_string()),
        ..spec(33)
    };
    match client.submit_and_wait(bomb.clone()).expect("submit") {
        Response::Done(_, JobDone::Panicked(msg)) => {
            assert!(msg.contains("scripted panic"), "{msg}")
        }
        other => panic!("expected panicked, got {other:?}"),
    }
    match client.submit_and_wait(bomb.clone()).expect("submit") {
        Response::Rejected(Reject::CircuitOpen { class, retry_ms }) => {
            assert_eq!(class, "default/bombs", "breaker keys are tenant-scoped");
            assert!(retry_ms <= 100);
        }
        other => panic!("expected circuit-open, got {other:?}"),
    }
    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => assert_eq!(s.open_circuits, vec!["default/bombs".to_string()]),
        other => panic!("expected status, got {other:?}"),
    }
    // Other classes keep serving while the breaker is open.
    match client.submit_and_wait(spec(34)).expect("submit") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected ok, got {other:?}"),
    }
    // After the cooldown a healthy probe of the same class closes it.
    std::thread::sleep(Duration::from_millis(150));
    let probe = JobSpec {
        class: Some("bombs".to_string()),
        ..spec(35)
    };
    match client.submit_and_wait(probe.clone()).expect("probe") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected probe success, got {other:?}"),
    }
    match client.submit_and_wait(probe).expect("post-probe") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("breaker should be closed, got {other:?}"),
    }

    // A malformed payload gets a structured rejection, not a hangup.
    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    write_frame(&mut raw, "not even close").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("response");
    assert!(
        matches!(
            Response::decode(&payload),
            Ok(Response::Rejected(Reject::BadRequest(_)))
        ),
        "{payload}"
    );

    // Graceful shutdown drains and seals.
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
    assert!(!socket.exists(), "socket removed on shutdown");
    let (_, rec) = Journal::open(&journal_path).expect("reopen journal");
    assert!(rec.was_sealed, "journal sealed by graceful shutdown");
    assert!(rec.unfinished.is_empty());
    // Artifacts only for the jobs that completed in time.
    assert!(artifact_dir.join("job-1.out").exists());
    assert!(!artifact_dir.join("job-2.out").exists(), "deadline job");
    assert!(!artifact_dir.join("job-3.out").exists(), "panicked job");
}

/// Tentpole chaos test: tenant `flood` hammers the server far past its
/// quota while tenant `paced` submits sequentially. Deficit round-robin
/// scheduling and per-tenant quotas must keep `paced` flowing: never
/// shed (it stays under quota) and with p99 bounded by 3x its solo
/// baseline (floored at 100 ms to absorb scheduler noise on busy CI
/// boxes — without DRR, `paced` would wait behind the flood's entire
/// continuously-refilled lane and blow far past the bound).
#[test]
fn flooding_tenant_cannot_starve_a_paced_tenant() {
    let _env = env_lock();
    let dirs = TestDirs::new("starvation");
    let mut opts = dirs.opts();
    opts.workers = 2;
    opts.queue_depth = 64;
    opts.tenant_max_queued = 4;
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    let paced_spec = |seed: u64| JobSpec {
        tenant: "paced".to_string(),
        seed,
        ..JobSpec::default()
    };
    // Worst-of-6 sequential latency — p99 for a sample this size.
    let paced_round = |client: &mut Client, base: u64| -> Duration {
        let mut worst = Duration::ZERO;
        for i in 0..6 {
            let t0 = Instant::now();
            match client.submit_and_wait(paced_spec(base + i)).expect("paced submit") {
                Response::Done(_, JobDone::Ok { .. }) => {}
                other => panic!("paced tenant must never be rejected under quota: {other:?}"),
            }
            worst = worst.max(t0.elapsed());
        }
        worst
    };

    // Solo baseline: the paced tenant alone on the server.
    let solo_p99 = paced_round(&mut client, 1_000);

    // Flood: four threads hammer tenant `flood` with cold, distinct
    // jobs, abandoning whatever the server sheds, until told to stop.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooders: Vec<_> = (0..4u64)
        .map(|t| {
            let stop = std::sync::Arc::clone(&stop);
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = connect_with_retry(&socket);
                let mut seed = 50_000 + 10_000 * t;
                let mut sheds = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    seed += 1;
                    let spec = JobSpec {
                        tenant: "flood".to_string(),
                        seed,
                        ..JobSpec::default()
                    };
                    match c.call(&Request::Submit(spec)) {
                        Ok(Response::Rejected(Reject::Shed {
                            reason,
                            retry_after_ms,
                        })) => {
                            assert_eq!(reason, "tenant-queue-full");
                            assert!(retry_after_ms >= 1, "hint must be usable");
                            sheds += 1;
                        }
                        Ok(Response::Accepted(_))
                        | Ok(Response::Rejected(Reject::QueueFull { .. })) => {}
                        Ok(other) => panic!("unexpected flood response: {other:?}"),
                        Err(e) => panic!("flood transport error: {e}"),
                    }
                }
                sheds
            })
        })
        .collect();

    // Give the flood a moment to saturate its lane, then run the paced
    // tenant through the contended server.
    std::thread::sleep(Duration::from_millis(20));
    let contended_p99 = paced_round(&mut client, 2_000);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let shed_total: u64 = flooders.into_iter().map(|h| h.join().expect("flooder")).sum();
    assert!(shed_total > 0, "the flood never hit its quota");

    let bound = solo_p99.max(Duration::from_millis(100)) * 3;
    assert!(
        contended_p99 <= bound,
        "paced tenant degraded beyond 3x solo: solo {solo_p99:?}, contended {contended_p99:?}"
    );

    // Per-tenant accounting: the flood's sheds are attributed to it;
    // the paced tenant shows its served jobs and zero sheds.
    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => {
            assert!(s.shed >= shed_total, "global shed counter lost sheds");
            let flood = s
                .tenants
                .iter()
                .find(|t| t.tenant == "flood")
                .expect("flood stats");
            assert!(flood.shed >= shed_total);
            let paced = s
                .tenants
                .iter()
                .find(|t| t.tenant == "paced")
                .expect("paced stats");
            assert_eq!(paced.shed, 0, "paced tenant must never be shed under quota");
            assert_eq!(paced.served, 12);
        }
        other => panic!("expected status, got {other:?}"),
    }

    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}

/// Satellite: the tenant-scoped breaker's half-open state admits
/// exactly one probe. While that probe is still queued behind a busy
/// worker, a second submit for the same tenant/class must bounce with
/// circuit-open rather than racing a second probe through.
#[test]
fn half_open_breaker_admits_one_probe_under_concurrent_submits() {
    let _env = env_lock();
    let dirs = TestDirs::new("half-open-race");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.breaker_threshold = 1;
    opts.breaker_cooldown_ms = 100;
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    let racy = |seed: u64, panic: bool| JobSpec {
        tenant: "acme".to_string(),
        class: Some("race".to_string()),
        scripted_panic: panic,
        seed,
        ..JobSpec::default()
    };
    // One scripted panic opens acme/race (threshold 1).
    match client.submit_and_wait(racy(41, true)).expect("bomb") {
        Response::Done(_, JobDone::Panicked(_)) => {}
        other => panic!("expected panic, got {other:?}"),
    }
    match client.submit_and_wait(racy(42, false)).expect("while open") {
        Response::Rejected(Reject::CircuitOpen { class, .. }) => assert_eq!(class, "acme/race"),
        other => panic!("expected circuit-open, got {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(150));
    // Pin the worker with a fat filler job so the probe cannot
    // complete before the concurrent submit arrives.
    let fill = JobSpec {
        tenant: "acme".to_string(),
        workload: vec![AppKind::Needle; 8],
        seed: 43,
        ..JobSpec::default()
    };
    match client.call(&Request::Submit(fill)).expect("fill") {
        Response::Accepted(_) => {}
        other => panic!("expected filler accepted, got {other:?}"),
    }
    // First same-class submit after the cooldown is the probe...
    let probe_id = match client.call(&Request::Submit(racy(44, false))).expect("probe") {
        Response::Accepted(id) => id,
        other => panic!("expected the probe to be admitted, got {other:?}"),
    };
    // ...and a concurrent second submit must NOT become a second probe.
    match client.call(&Request::Submit(racy(45, false))).expect("second") {
        Response::Rejected(Reject::CircuitOpen { class, retry_ms }) => {
            assert_eq!(class, "acme/race");
            assert!(retry_ms <= 100);
        }
        other => panic!("expected circuit-open while the probe is in flight, got {other:?}"),
    }
    // The probe completing closes the breaker for everyone.
    match client.call(&Request::Wait(probe_id)).expect("wait probe") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("probe should succeed, got {other:?}"),
    }
    match client.submit_and_wait(racy(46, false)).expect("after close") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("breaker should be closed after the probe, got {other:?}"),
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}

/// Deadline-aware admission: once the estimator has service-time
/// evidence for a class, an impossible deadline is shed at admission
/// with a retry-after hint; without evidence the job is admitted and
/// expires after acceptance (the pre-tenant behavior, which keeps
/// first-contact deadline jobs out of the forecaster's blast radius).
#[test]
fn deadline_forecast_sheds_with_evidence_and_admits_without() {
    let _env = env_lock();
    let dirs = TestDirs::new("deadline-shed");
    let mut opts = dirs.opts();
    opts.workers = 1;
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    // Heavy enough that its service time dwarfs a 1 ms deadline in
    // release builds too.
    let heavy = |seed: u64| JobSpec {
        workload: vec![AppKind::Needle; 16],
        class: Some("heavy".to_string()),
        seed,
        ..JobSpec::default()
    };
    // Train the estimator with one completed "heavy" job.
    match client.submit_and_wait(heavy(61)).expect("train") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected training job ok, got {other:?}"),
    }
    // A class the estimator has never served: admitted despite the
    // impossible deadline — shed only with evidence.
    let fresh = JobSpec {
        deadline_ms: Some(1),
        class: Some("fresh".to_string()),
        seed: 62,
        ..JobSpec::default()
    };
    match client.submit_and_wait(fresh).expect("fresh") {
        Response::Done(..) => {}
        other => panic!("no-evidence deadline job must be admitted, got {other:?}"),
    }
    // Build a backlog of known-heavy work...
    let mut queued = Vec::new();
    for seed in 63..67 {
        match client.call(&Request::Submit(heavy(seed))).expect("backlog") {
            Response::Accepted(id) => queued.push(id),
            other => panic!("expected backlog accepted, got {other:?}"),
        }
    }
    // ...then an impossible deadline for that class is shed at
    // admission, with a hint for when to try again.
    let doomed = JobSpec {
        deadline_ms: Some(1),
        ..heavy(70)
    };
    match client.call(&Request::Submit(doomed)).expect("doomed") {
        Response::Rejected(Reject::Shed {
            reason,
            retry_after_ms,
        }) => {
            assert_eq!(reason, "wont-meet-deadline");
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected wont-meet-deadline shed, got {other:?}"),
    }
    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => {
            assert!(s.shed >= 1);
            let t = s
                .tenants
                .iter()
                .find(|t| t.tenant == "default")
                .expect("default tenant stats");
            assert!(t.shed >= 1, "shed must be attributed to the tenant");
        }
        other => panic!("expected status, got {other:?}"),
    }
    for id in queued {
        client.call(&Request::Wait(id)).expect("drain backlog");
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}

/// Brownout: past the utilization threshold the server keeps serving
/// warm scenario-cache hits and sheds cold work (state-level — no
/// workers, so the backlog cannot drain underneath the assertions).
#[test]
fn brownout_sheds_cold_work_but_serves_warm_cache_hits() {
    let _env = env_lock();
    let dirs = TestDirs::new("brownout");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.queue_depth = 4;
    opts.brownout_threshold = 0.1;
    let (server, _) = Server::new(opts).expect("server");

    // Warm the scenario cache for one spec (in-process memo hit).
    let warm = spec(91);
    run_job_direct(&warm).expect("warm the cache");

    // Below the threshold everything is admitted.
    assert_eq!(server.handle(Request::Submit(spec(92))), Response::Accepted(1));
    // Utilization is now 1/5 > 0.1: brownout. Cold work sheds...
    match server.handle(Request::Submit(spec(93))) {
        Response::Rejected(Reject::Shed {
            reason,
            retry_after_ms,
        }) => {
            assert_eq!(reason, "brownout");
            assert!(retry_after_ms >= 50, "brownout hints are deliberately coarse");
        }
        other => panic!("expected brownout shed, got {other:?}"),
    }
    // ...but the warm spec is still served.
    assert_eq!(server.handle(Request::Submit(warm)), Response::Accepted(2));
    match server.handle(Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.shed, 1);
            let t = s
                .tenants
                .iter()
                .find(|t| t.tenant == "default")
                .expect("default tenant stats");
            assert_eq!(t.shed, 1);
            assert_eq!(t.queued, 2);
        }
        other => panic!("expected status, got {other:?}"),
    }
}

/// Satellite: `Client::submit_with_retry` rides out sheds — backing
/// off on the server's retry-after hint — until tenant capacity frees
/// up, within its budget.
#[test]
fn submit_with_retry_rides_out_sheds_until_capacity_frees() {
    let _env = env_lock();
    let dirs = TestDirs::new("retry-shed");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.tenant_max_queued = 1;
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    // Saturate the tenant's queue quota with fat jobs.
    let fat = |seed: u64| JobSpec {
        workload: vec![AppKind::Needle; 8],
        seed,
        ..JobSpec::default()
    };
    let mut accepted = 0;
    for seed in 81..85 {
        if let Response::Accepted(_) = client.call(&Request::Submit(fat(seed))).expect("fill") {
            accepted += 1;
        }
    }
    assert!(accepted >= 1, "at least the first job must be admitted");

    // A plain submit may shed right now; the retrying submit must ride
    // it out and come back accepted well within its budget.
    let resp = client
        .submit_with_retry(&fat(90), Duration::from_secs(30))
        .expect("retrying submit");
    let id = match resp {
        Response::Accepted(id) => id,
        other => panic!("expected eventual acceptance, got {other:?}"),
    };
    match client.call(&Request::Wait(id)).expect("wait") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected ok, got {other:?}"),
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}

/// Satellite: a `submit` against a server that accepts the connection
/// but never replies must fail with a clear timeout error and a
/// non-zero exit code — not hang forever.
#[test]
fn submit_times_out_against_a_silent_server_with_a_clear_error() {
    let _env = env_lock();
    let dirs = TestDirs::new("silent-server");
    let socket = dirs.root.join("silent.sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).expect("bind silent socket");
    // Accept connections and read forever without ever replying.
    let silent = std::thread::spawn(move || {
        use std::io::Read;
        while let Ok((mut s, _)) = listener.accept() {
            let mut sink = [0u8; 256];
            while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
        }
    });

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args([
            "submit",
            "--socket",
            socket.to_str().unwrap(),
            "--workload",
            "needle",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("run hyperq submit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1, got {:?}; stderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("timed out after 300ms"),
        "expected a timeout error, got: {stderr}"
    );

    // The env var sets the default; the flag still wins over it.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args(["submit", "--socket", socket.to_str().unwrap(), "--workload", "needle"])
        .env("HQ_SUBMIT_TIMEOUT_MS", "250")
        .output()
        .expect("run hyperq submit");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("timed out after 250ms"),
        "env-provided timeout not honored: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    drop(silent);
}

/// Satellite: a journal written through the group-commit path (several
/// concurrent submits coalesced into shared fsync windows) stays
/// byte-compatible with the solo-append format: a truncation sweep
/// over the final record recovers every intact job to byte-identical
/// artifacts and drops exactly the torn tail.
#[test]
fn group_commit_journal_survives_truncation_sweep() {
    let _env = env_lock();
    let dirs = TestDirs::new("gc-truncation");
    let mut opts = dirs.opts();
    // A wide window guarantees the concurrent submits below share it.
    opts.commit_window_us = 20_000;
    let (server, _) = Server::new(opts.clone()).expect("server");

    // Four concurrent submits block inside the commit window together;
    // no worker threads are running (`run()` was never called), so all
    // four stay accepted-but-unfinished in the journal.
    let submits: Vec<_> = (0..4u64)
        .map(|i| {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || (300 + i, server.handle(Request::Submit(spec(300 + i)))))
        })
        .collect();
    let mut by_id: Vec<(u64, u64)> = submits
        .into_iter()
        .map(|h| {
            let (seed, resp) = h.join().expect("submit thread");
            match resp {
                Response::Accepted(id) => (id, seed),
                other => panic!("expected accepted, got {other:?}"),
            }
        })
        .collect();
    drop(server);
    by_id.sort_unstable();

    let full = std::fs::read(&opts.journal).expect("journal bytes");
    let last_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("final record start");
    // Staging order is id order, so the final record is the max id's.
    let direct: Vec<(u64, String)> = by_id
        .iter()
        .map(|&(id, seed)| (id, run_job_direct(&spec(seed)).expect("direct run")))
        .collect();
    let (&(last_id, _), intact) = by_id.split_last().expect("four accepted jobs");

    for cut in last_start..=full.len() {
        std::fs::write(&opts.journal, &full[..cut]).unwrap();
        let _ = std::fs::remove_dir_all(&opts.artifact_dir);
        let (_, report) = Server::new(opts.clone()).expect("recovery must not fail");
        let torn = cut < full.len();

        let replayed: Vec<u64> = report.replayed.iter().map(|(id, _)| *id).collect();
        for &(id, _) in intact {
            assert!(replayed.contains(&id), "cut {cut}: intact job {id} must replay");
        }
        assert_eq!(
            replayed.contains(&last_id),
            !torn,
            "cut {cut}: the final job replays iff its record survived whole"
        );
        let expect_torn = if torn { (cut - last_start) as u64 } else { 0 };
        assert_eq!(report.torn_bytes, expect_torn, "cut {cut}");

        for &(id, ref want) in &direct {
            let path = opts.artifact_dir.join(format!("job-{id}.out"));
            if id == last_id && torn {
                assert!(!path.exists(), "cut {cut}: torn job must leave no artifact");
                continue;
            }
            let got = std::fs::read_to_string(&path).expect("replayed artifact");
            assert_eq!(&got, want, "cut {cut}: job {id} artifact not byte-identical");
        }
    }
}

/// Satellite: `kill -9` inside an open commit window loses no accepted
/// work because acceptance was never sent — the client is still
/// blocked on the covering fsync when the server dies. The staged
/// record's bytes do survive a mere process kill (the page cache is
/// not lost), so the machine crash group commit actually defends
/// against is simulated by truncating them away; recovery must then
/// find a clean journal with nothing owed.
#[test]
fn kill_nine_inside_commit_window_never_acked_the_lost_record() {
    let _env = env_lock();
    let dirs = TestDirs::new("gc-kill9");
    let socket = dirs.root.join("svc.sock");
    let journal = dirs.root.join("journal").join("service.wal");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--workers",
            "1",
            "--commit-window-us",
            "1000000",
        ])
        .env("HQ_RESULTS", &dirs.root)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn hyperq serve");
    for _ in 0..400 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(socket.exists(), "server never bound {}", socket.display());
    let len_before = std::fs::metadata(&journal).expect("journal created").len();

    // Submit into a one-second commit window: the A record is staged
    // and buffer-written, but the `accepted` reply is withheld until
    // the covering fsync — which never comes.
    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    write_frame(&mut raw, &Request::Submit(spec(400)).encode()).expect("send submit");
    std::thread::sleep(Duration::from_millis(300));
    let pid = child.id().to_string();
    let st = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status()
        .expect("kill -9");
    assert!(st.success(), "kill -9 {pid} failed");
    let _ = child.wait();

    // The client never saw `accepted` for the staged record.
    let mut reader = std::io::BufReader::new(raw);
    match read_frame(&mut reader) {
        Ok(None) => {}  // clean EOF
        Err(_) => {}    // connection reset — equally no ack
        Ok(Some(payload)) => panic!("server acked inside the open commit window: {payload}"),
    }

    // kill -9 alone leaves the staged bytes in the file; drop them to
    // model the machine crash that loses un-fsynced data.
    let full = std::fs::read(&journal).expect("journal bytes");
    assert!(
        full.len() as u64 > len_before,
        "the staged record should survive a process kill"
    );
    std::fs::write(&journal, &full[..len_before as usize]).unwrap();

    let (_, report) = Server::new(dirs.opts()).expect("recovery");
    assert!(
        report.replayed.is_empty(),
        "a lost record nobody was promised must not replay: {report:?}"
    );
    assert_eq!(report.torn_bytes, 0, "the truncated journal is clean");
    assert!(
        !dirs.opts().artifact_dir.join("job-1.out").exists(),
        "no artifact for the lost submit"
    );
}

/// Satellite: batched dispatch preserves the tenancy contract. Two
/// tenants with eight queued jobs each and `tenant_max_inflight 2`
/// drain through one worker with `dispatch_batch 8`: every wakeup
/// takes at most two jobs per tenant (four per batch, in DRR order),
/// both tenants finish fully served, and every artifact is
/// byte-identical to the single-job `run_job_direct` path.
#[test]
fn batched_dispatch_respects_drr_and_inflight_caps_with_identical_artifacts() {
    let _env = env_lock();
    let dirs = TestDirs::new("batch-drr");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.queue_depth = 64;
    opts.dispatch_batch = 8;
    opts.tenant_max_inflight = 2;
    opts.commit_window_us = 0; // synchronous accepts for pre-queueing
    let socket = opts.socket.clone();
    let artifact_dir = opts.artifact_dir.clone();
    let (server, _) = Server::new(opts).expect("server");

    // Pre-queue everything before any worker exists, so the first
    // drain faces the full two-tenant backlog.
    let mut ids: Vec<(u64, JobSpec)> = Vec::new();
    for i in 0..8u64 {
        for tenant in ["alpha", "beta"] {
            let s = JobSpec {
                tenant: tenant.to_string(),
                seed: 500 + 10 * i + (tenant == "beta") as u64,
                ..JobSpec::default()
            };
            match server.handle(Request::Submit(s.clone())) {
                Response::Accepted(id) => ids.push((id, s)),
                other => panic!("expected accepted, got {other:?}"),
            }
        }
    }

    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);
    for (id, _) in &ids {
        match client.call(&Request::Wait(*id)).expect("wait") {
            Response::Done(_, JobDone::Ok { .. }) => {}
            other => panic!("job {id} failed: {other:?}"),
        }
    }

    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => {
            assert_eq!(s.dispatched_jobs, 16, "all jobs flow through batched dispatch");
            // The inflight cap bounds every batch at two jobs per
            // tenant, so the 16-job backlog takes exactly four 4-job
            // dispatches: fewer would mean the cap was ignored, more
            // would mean batching never engaged.
            assert_eq!(s.dispatches, 4, "expected four capped 4-job batches");
            for tenant in ["alpha", "beta"] {
                let t = s
                    .tenants
                    .iter()
                    .find(|t| t.tenant == tenant)
                    .expect("tenant stats");
                assert_eq!(t.served, 8, "{tenant} must be fully served");
                assert_eq!(t.shed, 0, "{tenant} must never be shed");
            }
            assert!(
                s.solo_flushes >= 16,
                "window 0 means one solo fsync per accept, got {}",
                s.solo_flushes
            );
        }
        other => panic!("expected status, got {other:?}"),
    }

    for (id, spec) in &ids {
        let got = std::fs::read_to_string(artifact_dir.join(format!("job-{id}.out")))
            .expect("served artifact");
        assert_eq!(
            got,
            run_job_direct(spec).unwrap(),
            "job {id} artifact differs from the direct run"
        );
    }

    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}

/// Satellite: a frame whose length header exceeds `MAX_FRAME` is
/// bounced with a framed error *before* any allocation, over a real
/// socket; the connection then closes without taking the server down.
#[test]
fn oversized_frame_is_rejected_without_allocation_over_socket() {
    use std::io::Write;

    let _env = env_lock();
    let dirs = TestDirs::new("oversize");
    let opts = dirs.opts();
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let _probe = connect_with_retry(&socket);

    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    raw.write_all(format!("{}\n", u64::MAX).as_bytes()).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("framed error");
    match Response::decode(&payload) {
        Ok(Response::Rejected(Reject::BadRequest(msg))) => {
            assert!(msg.contains("protocol:"), "{msg}")
        }
        other => panic!("expected framed bad-request, got {other:?} ({payload})"),
    }
    // The server is still healthy for well-formed clients.
    let mut client = connect_with_retry(&socket);
    match client.submit_and_wait(spec(77)).expect("submit after abuse") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected ok, got {other:?}"),
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}
