//! End-to-end tests for the resilient scenario service: journal crash
//! recovery (including a truncation sweep over every byte of the final
//! record), queue backpressure, circuit breaking, deadline
//! cancellation, panic isolation and graceful shutdown over a real
//! Unix-domain socket.

use hq_bench::service::protocol::{read_frame, write_frame};
use hq_bench::service::{
    run_job_direct, Client, JobDone, Journal, JobSpec, Reject, Request, Response, Server,
    ServeOptions,
};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Tests mutate the process-global `HQ_RESULTS` (the scenario cache
/// root); each test holds this for its whole body.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct TestDirs {
    root: PathBuf,
}

impl TestDirs {
    fn new(name: &str) -> TestDirs {
        let root = std::env::temp_dir().join(format!("hq-service-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test dir");
        std::env::set_var("HQ_RESULTS", &root);
        TestDirs { root }
    }

    fn opts(&self) -> ServeOptions {
        let mut opts = ServeOptions::new(self.root.join("hq.sock"));
        opts.journal = self.root.join("journal").join("service.wal");
        opts.artifact_dir = self.root.join("service");
        opts
    }
}

impl Drop for TestDirs {
    fn drop(&mut self) {
        std::env::remove_var("HQ_RESULTS");
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        seed,
        ..JobSpec::default()
    }
}

/// Satellite: append N jobs, truncate the journal at every byte offset
/// of the final record, replay, and assert (a) no panic, (b) completed
/// jobs are not re-run, (c) unfinished jobs re-execute to
/// byte-identical artifacts.
#[test]
fn journal_truncation_sweep_recovers_at_every_offset() {
    let _env = env_lock();
    let dirs = TestDirs::new("truncation-sweep");
    let opts = dirs.opts();

    // Journal three accepted jobs; job 1 completed, jobs 2 and 3 not.
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("fresh journal");
        j.accept(1, &spec(1)).unwrap();
        j.done(1, "ok").unwrap();
        j.accept(2, &spec(2)).unwrap();
        j.accept(3, &spec(3)).unwrap();
    }
    let full = std::fs::read(&opts.journal).expect("journal bytes");
    // The final record is job 3's accept line.
    let last_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|i| i + 1)
        .expect("final record start");

    let direct2 = run_job_direct(&spec(2)).expect("direct job 2");
    let direct3 = run_job_direct(&spec(3)).expect("direct job 3");

    for cut in last_start..=full.len() {
        std::fs::write(&opts.journal, &full[..cut]).unwrap();
        let _ = std::fs::remove_dir_all(&opts.artifact_dir);
        let (_, report) = Server::new(opts.clone()).expect("recovery must not fail");

        let replayed: Vec<u64> = report.replayed.iter().map(|(id, _)| *id).collect();
        assert!(
            !replayed.contains(&1),
            "cut {cut}: completed job 1 must not re-run"
        );
        assert!(
            replayed.contains(&2),
            "cut {cut}: job 2's record is intact and must replay"
        );
        let torn = cut < full.len();
        assert_eq!(
            replayed.contains(&3),
            !torn,
            "cut {cut}: job 3 replays iff its record survived whole"
        );
        let expect_torn = if torn { (cut - last_start) as u64 } else { 0 };
        assert_eq!(report.torn_bytes, expect_torn, "cut {cut}");

        assert!(
            !opts.artifact_dir.join("job-1.out").exists(),
            "cut {cut}: job 1 must produce no artifact"
        );
        let got2 = std::fs::read_to_string(opts.artifact_dir.join("job-2.out"))
            .expect("job 2 artifact");
        assert_eq!(got2, direct2, "cut {cut}: job 2 artifact not byte-identical");
        if !torn {
            let got3 = std::fs::read_to_string(opts.artifact_dir.join("job-3.out"))
                .expect("job 3 artifact");
            assert_eq!(got3, direct3, "cut {cut}: job 3 artifact not byte-identical");
        }

        // Recovery marked the replayed jobs done: reopening finds
        // nothing left to do.
        let (_, rec) = Journal::open(&opts.journal).expect("reopen");
        assert!(
            rec.unfinished.is_empty(),
            "cut {cut}: replay must leave no unfinished jobs"
        );
    }
}

/// A crash *during* replay (simulated by recovering, then restoring an
/// older journal plus the new done-markers) never loses or duplicates
/// work: done markers appended by replay are honoured on the next pass.
#[test]
fn replay_is_resumable_and_marks_jobs_done() {
    let _env = env_lock();
    let dirs = TestDirs::new("replay-marks");
    let opts = dirs.opts();
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("fresh journal");
        j.accept(1, &spec(21)).unwrap();
        j.accept(2, &spec(22)).unwrap();
    }
    let (_, first) = Server::new(opts.clone()).expect("first recovery");
    assert_eq!(first.replayed.len(), 2);
    // Second recovery of the same journal: everything already done.
    let (_, second) = Server::new(opts.clone()).expect("second recovery");
    assert!(second.replayed.is_empty(), "{second:?}");
    assert_eq!(second.already_done, 2);
    // Jobs that carried a deadline are conservatively expired on
    // replay, not executed.
    {
        let (mut j, _) = Journal::open(&opts.journal).expect("journal");
        let deadline_spec = JobSpec {
            deadline_ms: Some(60_000),
            ..spec(23)
        };
        j.accept(7, &deadline_spec).unwrap();
    }
    let (_, third) = Server::new(opts.clone()).expect("third recovery");
    assert_eq!(third.replayed, vec![(7, "deadline".to_string())]);
    assert!(!opts.artifact_dir.join("job-7.out").exists());
}

/// Backpressure and shutdown at the state-machine level (no workers
/// running, so the queue cannot drain underneath the test).
#[test]
fn bounded_queue_rejects_and_shutdown_drains() {
    let _env = env_lock();
    let dirs = TestDirs::new("backpressure");
    let mut opts = dirs.opts();
    opts.queue_depth = 2;
    let (server, _) = Server::new(opts).expect("server");

    assert_eq!(server.handle(Request::Submit(spec(1))), Response::Accepted(1));
    assert_eq!(server.handle(Request::Submit(spec(2))), Response::Accepted(2));
    assert_eq!(
        server.handle(Request::Submit(spec(3))),
        Response::Rejected(Reject::QueueFull { depth: 2 }),
        "third submit must hit the bound"
    );
    match server.handle(Request::Status) {
        Response::Status(s) => {
            assert_eq!(s.queued, 2);
            assert_eq!(s.rejected, 1);
        }
        other => panic!("expected status, got {other:?}"),
    }
    // Waiting for an id that was never accepted is a structured error.
    assert!(matches!(
        server.handle(Request::Wait(99)),
        Response::Rejected(Reject::BadRequest(_))
    ));
    // Shutdown reports the backlog and rejects all further submits.
    assert_eq!(server.handle(Request::Shutdown), Response::Bye { draining: 2 });
    assert_eq!(
        server.handle(Request::Submit(spec(4))),
        Response::Rejected(Reject::ShuttingDown)
    );
}

fn connect_with_retry(socket: &Path) -> Client {
    for _ in 0..200 {
        if let Ok(c) = Client::connect(socket) {
            return c;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never bound {}", socket.display());
}

/// Full service lifecycle over a real socket: healthy jobs, deadline
/// cancellation, panic isolation, the per-class circuit breaker, and a
/// graceful shutdown that seals the journal.
#[test]
fn service_over_socket_survives_panics_deadlines_and_breaker_trips() {
    let _env = env_lock();
    let dirs = TestDirs::new("socket-e2e");
    let mut opts = dirs.opts();
    opts.workers = 1;
    opts.breaker_threshold = 1;
    opts.breaker_cooldown_ms = 100;
    let socket = opts.socket.clone();
    let journal_path = opts.journal.clone();
    let artifact_dir = opts.artifact_dir.clone();

    let (server, report) = Server::new(opts).expect("server");
    assert!(report.replayed.is_empty());
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let mut client = connect_with_retry(&socket);

    // Healthy job: served artifact is byte-identical to a direct run.
    let healthy = spec(31);
    match client.submit_and_wait(healthy.clone()).expect("submit") {
        Response::Done(id, JobDone::Ok { artifact }) => {
            let served = std::fs::read_to_string(&artifact).expect("artifact file");
            assert_eq!(served, run_job_direct(&healthy).unwrap());
            assert!(artifact.ends_with(&format!("job-{id}.out")));
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // Deadline 0 expires before the worker can start it.
    let doomed = JobSpec {
        deadline_ms: Some(0),
        ..spec(32)
    };
    match client.submit_and_wait(doomed).expect("submit") {
        Response::Done(_, JobDone::DeadlineExceeded) => {}
        other => panic!("expected deadline-exceeded, got {other:?}"),
    }

    // A panicking job answers `panic` — and opens its class's breaker
    // (threshold 1) without taking the worker down.
    let bomb = JobSpec {
        scripted_panic: true,
        class: Some("bombs".to_string()),
        ..spec(33)
    };
    match client.submit_and_wait(bomb.clone()).expect("submit") {
        Response::Done(_, JobDone::Panicked(msg)) => {
            assert!(msg.contains("scripted panic"), "{msg}")
        }
        other => panic!("expected panicked, got {other:?}"),
    }
    match client.submit_and_wait(bomb.clone()).expect("submit") {
        Response::Rejected(Reject::CircuitOpen { class, retry_ms }) => {
            assert_eq!(class, "bombs");
            assert!(retry_ms <= 100);
        }
        other => panic!("expected circuit-open, got {other:?}"),
    }
    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => assert_eq!(s.open_circuits, vec!["bombs".to_string()]),
        other => panic!("expected status, got {other:?}"),
    }
    // Other classes keep serving while the breaker is open.
    match client.submit_and_wait(spec(34)).expect("submit") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected ok, got {other:?}"),
    }
    // After the cooldown a healthy probe of the same class closes it.
    std::thread::sleep(Duration::from_millis(150));
    let probe = JobSpec {
        class: Some("bombs".to_string()),
        ..spec(35)
    };
    match client.submit_and_wait(probe.clone()).expect("probe") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected probe success, got {other:?}"),
    }
    match client.submit_and_wait(probe).expect("post-probe") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("breaker should be closed, got {other:?}"),
    }

    // A malformed payload gets a structured rejection, not a hangup.
    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    write_frame(&mut raw, "not even close").unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("response");
    assert!(
        matches!(
            Response::decode(&payload),
            Ok(Response::Rejected(Reject::BadRequest(_)))
        ),
        "{payload}"
    );

    // Graceful shutdown drains and seals.
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
    assert!(!socket.exists(), "socket removed on shutdown");
    let (_, rec) = Journal::open(&journal_path).expect("reopen journal");
    assert!(rec.was_sealed, "journal sealed by graceful shutdown");
    assert!(rec.unfinished.is_empty());
    // Artifacts only for the jobs that completed in time.
    assert!(artifact_dir.join("job-1.out").exists());
    assert!(!artifact_dir.join("job-2.out").exists(), "deadline job");
    assert!(!artifact_dir.join("job-3.out").exists(), "panicked job");
}

/// Satellite: a `submit` against a server that accepts the connection
/// but never replies must fail with a clear timeout error and a
/// non-zero exit code — not hang forever.
#[test]
fn submit_times_out_against_a_silent_server_with_a_clear_error() {
    let _env = env_lock();
    let dirs = TestDirs::new("silent-server");
    let socket = dirs.root.join("silent.sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).expect("bind silent socket");
    // Accept connections and read forever without ever replying.
    let silent = std::thread::spawn(move || {
        use std::io::Read;
        while let Ok((mut s, _)) = listener.accept() {
            let mut sink = [0u8; 256];
            while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
        }
    });

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args([
            "submit",
            "--socket",
            socket.to_str().unwrap(),
            "--workload",
            "needle",
            "--timeout-ms",
            "300",
        ])
        .output()
        .expect("run hyperq submit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected exit 1, got {:?}; stderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("timed out after 300ms"),
        "expected a timeout error, got: {stderr}"
    );

    // The env var sets the default; the flag still wins over it.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hyperq"))
        .args(["submit", "--socket", socket.to_str().unwrap(), "--workload", "needle"])
        .env("HQ_SUBMIT_TIMEOUT_MS", "250")
        .output()
        .expect("run hyperq submit");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("timed out after 250ms"),
        "env-provided timeout not honored: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    drop(silent);
}

/// Satellite: a frame whose length header exceeds `MAX_FRAME` is
/// bounced with a framed error *before* any allocation, over a real
/// socket; the connection then closes without taking the server down.
#[test]
fn oversized_frame_is_rejected_without_allocation_over_socket() {
    use std::io::Write;

    let _env = env_lock();
    let dirs = TestDirs::new("oversize");
    let opts = dirs.opts();
    let socket = opts.socket.clone();
    let (server, _) = Server::new(opts).expect("server");
    let runner = {
        let server = std::sync::Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };
    let _probe = connect_with_retry(&socket);

    let mut raw = std::os::unix::net::UnixStream::connect(&socket).expect("raw connect");
    raw.write_all(format!("{}\n", u64::MAX).as_bytes()).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let payload = read_frame(&mut reader).unwrap().expect("framed error");
    match Response::decode(&payload) {
        Ok(Response::Rejected(Reject::BadRequest(msg))) => {
            assert!(msg.contains("protocol:"), "{msg}")
        }
        other => panic!("expected framed bad-request, got {other:?} ({payload})"),
    }
    // The server is still healthy for well-formed clients.
    let mut client = connect_with_retry(&socket);
    match client.submit_and_wait(spec(77)).expect("submit after abuse") {
        Response::Done(_, JobDone::Ok { .. }) => {}
        other => panic!("expected ok, got {other:?}"),
    }
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::Bye { .. } => {}
        other => panic!("expected bye, got {other:?}"),
    }
    runner.join().expect("runner join").expect("run ok");
}
