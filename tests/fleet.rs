//! Fleet integration tests: consistent-hash ring properties
//! (proptest), a kill -9 of a worker mid-burst with zero accepted-job
//! loss and byte-identical artifacts, and permanent-death rehashing
//! with the shard surfacing in `open_circuits`.

use hq_bench::service::ring::DEFAULT_VNODES;
use hq_bench::service::{run_job_direct, Client, JobDone, JobSpec, Request, Response, Ring};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Ring properties.
// ---------------------------------------------------------------------

fn member_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("shard-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Placement is a pure function of the member *set*: any insertion
    /// order, or a fresh `Ring` in another process, computes the same
    /// owner for every key.
    #[test]
    fn ring_placement_is_deterministic_and_order_independent(
        members in 2usize..6,
        order in proptest::collection::vec(0usize..100, 1..6),
        seeds in proptest::collection::vec(0u64..10_000, 1..40),
    ) {
        let names = member_names(members);
        let mut sorted_in = Ring::new(DEFAULT_VNODES);
        for n in &names {
            sorted_in.add(n);
        }
        let mut shuffled_in = Ring::new(DEFAULT_VNODES);
        for (i, &o) in order.iter().enumerate() {
            // A crude deterministic shuffle: rotate by the sampled
            // offsets, re-adding already-present names (idempotent).
            shuffled_in.add(&names[(o + i) % names.len()]);
        }
        for n in &names {
            shuffled_in.add(n);
        }
        for seed in seeds {
            let key = JobSpec { seed, ..JobSpec::default() }.signature();
            prop_assert_eq!(sorted_in.node_for(&key), shuffled_in.node_for(&key));
        }
    }

    /// Removing one member remaps *only* that member's keys; every
    /// other key keeps its owner (and therefore its warm shard cache).
    #[test]
    fn ring_removal_remaps_only_the_removed_members_keys(
        members in 2usize..6,
        victim in 0usize..6,
        seeds in proptest::collection::vec(0u64..10_000, 1..60),
    ) {
        let names = member_names(members);
        let victim = &names[victim % members];
        let mut full = Ring::new(DEFAULT_VNODES);
        for n in &names {
            full.add(n);
        }
        let mut reduced = full.clone();
        reduced.remove(victim);
        for seed in seeds {
            let key = JobSpec { seed, ..JobSpec::default() }.signature();
            let before = full.node_for(&key).unwrap();
            let after = reduced.node_for(&key).unwrap();
            if before == victim {
                prop_assert_ne!(after, victim);
            } else {
                prop_assert_eq!(before, after);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Live fleet tests.
// ---------------------------------------------------------------------

/// Tests mutate the process-global `HQ_RESULTS` (for the in-process
/// `run_job_direct` comparisons); each holds this for its whole body.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct FleetUnderTest {
    root: PathBuf,
    fleet_dir: PathBuf,
    child: Child,
    addr: String,
}

impl FleetUnderTest {
    /// Spawn `hyperq serve --tcp 127.0.0.1:0 --fleet N` and wait for
    /// the coordinator to publish its resolved address.
    fn start(name: &str, workers: usize, extra: &[&str]) -> FleetUnderTest {
        let root = std::env::temp_dir().join(format!("hq-fleet-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test dir");
        std::env::set_var("HQ_RESULTS", root.join("client-results"));
        let fleet_dir = root.join("fleet");
        let child = Command::new(env!("CARGO_BIN_EXE_hyperq"))
            .args([
                "serve",
                "--tcp",
                "127.0.0.1:0",
                "--fleet",
                &workers.to_string(),
                "--fleet-dir",
                fleet_dir.to_str().unwrap(),
            ])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::from(
                std::fs::File::create(root.join("coord.log")).unwrap(),
            ))
            .spawn()
            .expect("spawn coordinator");
        let addr_file = fleet_dir.join("addr");
        let deadline = Instant::now() + Duration::from_secs(60);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(
                Instant::now() < deadline,
                "coordinator never published {}:\n{}",
                addr_file.display(),
                std::fs::read_to_string(root.join("coord.log")).unwrap_or_default()
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        FleetUnderTest {
            root,
            fleet_dir,
            child,
            addr,
        }
    }

    fn client(&self) -> Client {
        for _ in 0..300 {
            if let Ok(mut c) = Client::connect_tcp(&self.addr) {
                c.set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("read timeout");
                return c;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("coordinator never accepted on {}", self.addr);
    }

    fn coord_log(&self) -> String {
        std::fs::read_to_string(self.root.join("coord.log")).unwrap_or_default()
    }

    /// `kill -9` the worker process behind `shard`.
    fn kill_worker(&self, shard: &str) {
        let pid = std::fs::read_to_string(self.fleet_dir.join(shard).join("worker.pid"))
            .expect("worker pidfile");
        let status = Command::new("kill")
            .args(["-9", pid.trim()])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -9 {pid} failed");
    }

    /// Ask the coordinator to shut down, then wait for it to drain,
    /// seal the workers and exit cleanly.
    fn shutdown(&mut self) {
        let mut c = self.client();
        match c.call(&Request::Shutdown).expect("shutdown request") {
            Response::Bye { .. } => {}
            other => panic!("expected bye, got {other:?}"),
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait coordinator") {
                assert!(status.success(), "coordinator exited {status}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "coordinator never exited after shutdown:\n{}",
                self.coord_log()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Assert the shard's journal ends in a seal (`S`) record.
    fn assert_sealed(&self, shard: &str) {
        let path = self.fleet_dir.join(shard).join("journal/service.wal");
        let text = std::fs::read_to_string(&path).expect("read shard journal");
        let last = text.lines().last().unwrap_or_default();
        let mut fields = last.split(' ');
        let _crc = fields.next();
        assert_eq!(
            fields.next(),
            Some("S"),
            "{}: journal not sealed; last record: {last:?}",
            path.display()
        );
    }
}

impl Drop for FleetUnderTest {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        // Reap any workers the coordinator left behind on a panic.
        for i in 0..8 {
            let pidfile = self.fleet_dir.join(format!("shard-{i}")).join("worker.pid");
            if let Ok(pid) = std::fs::read_to_string(&pidfile) {
                let _ = Command::new("kill")
                    .args(["-9", pid.trim()])
                    .stderr(Stdio::null())
                    .status();
            }
        }
        std::env::remove_var("HQ_RESULTS");
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        seed,
        ..JobSpec::default()
    }
}

/// Expect a `Done(_, Ok)` whose artifact is byte-identical to an
/// in-process direct run of the same spec.
fn assert_done_ok_identical(resp: Response, expect: &JobSpec) {
    match resp {
        Response::Done(_, JobDone::Ok { artifact }) => {
            let served = std::fs::read_to_string(&artifact)
                .unwrap_or_else(|e| panic!("read artifact {artifact}: {e}"));
            let direct = run_job_direct(expect).expect("direct run");
            assert_eq!(served, direct, "artifact diverges from --direct for {expect:?}");
        }
        other => panic!("expected ok for {expect:?}, got {other:?}"),
    }
}

/// The headline robustness guarantee: `kill -9` a worker in the middle
/// of a burst; every accepted job still completes, artifacts stay
/// byte-identical to direct runs, and the worker is restarted in place.
#[test]
fn kill_nine_mid_burst_loses_no_jobs_and_artifacts_match_direct() {
    let _env = env_lock();
    let fleet = FleetUnderTest::start("kill-mid-burst", 3, &["--heartbeat-ms", "100"]);

    const JOBS: u64 = 30;
    const CONNS: u64 = 3;
    const KILL_AFTER: u64 = 5;
    let completions = Arc::new(AtomicU64::new(0));
    let killed = Arc::new(AtomicBool::new(false));
    let fleet = Arc::new(Mutex::new(fleet));
    let handles: Vec<_> = (0..CONNS)
        .map(|t| {
            let completions = Arc::clone(&completions);
            let killed = Arc::clone(&killed);
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || {
                let mut client = fleet.lock().unwrap().client();
                for i in 0..JOBS / CONNS {
                    let s = spec(1000 + t * 100 + i);
                    let resp = client.submit_and_wait(s.clone()).expect("submit+wait");
                    assert_done_ok_identical(resp, &s);
                    let n = completions.fetch_add(1, Ordering::SeqCst) + 1;
                    if n == KILL_AFTER && !killed.swap(true, Ordering::SeqCst) {
                        fleet.lock().unwrap().kill_worker("shard-1");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("burst thread");
    }
    assert_eq!(completions.load(Ordering::SeqCst), JOBS);
    assert!(killed.load(Ordering::SeqCst), "burst ended before the kill fired");

    let mut fleet = Arc::try_unwrap(fleet)
        .unwrap_or_else(|_| panic!("burst threads still hold the fleet"))
        .into_inner()
        .unwrap();
    // The supervisor noticed the corpse and restarted it in place.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !fleet.coord_log().contains("restarting shard-1 in place") {
        assert!(
            Instant::now() < deadline,
            "no in-place restart in coordinator log:\n{}",
            fleet.coord_log()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Graceful shutdown seals every shard's journal.
    fleet.shutdown();
    for shard in ["shard-0", "shard-1", "shard-2"] {
        fleet.assert_sealed(shard);
    }
}

/// When a worker dies for good (`--max-restarts 0`), its accepted jobs
/// are rehashed onto surviving shards and still complete byte-identical
/// to direct runs, and the dead shard shows up in `open_circuits`.
#[test]
fn dead_shard_jobs_rehash_to_survivors_and_surface_in_status() {
    let _env = env_lock();
    let mut fleet = FleetUnderTest::start(
        "rehash",
        2,
        &["--heartbeat-ms", "100", "--max-restarts", "0"],
    );

    // Find seeds the ring places on shard-1 — the fleet computes
    // placement with this exact same deterministic ring.
    let mut ring = Ring::new(DEFAULT_VNODES);
    ring.add("shard-0");
    ring.add("shard-1");
    let victim_seeds: Vec<u64> = (0..10_000u64)
        .filter(|&s| ring.node_for(&spec(s).signature()) == Some("shard-1"))
        .take(4)
        .collect();
    assert_eq!(victim_seeds.len(), 4, "shard-1 owns almost nothing?");

    // Submit the victim-owned jobs (accepted => journaled on shard-1),
    // then kill -9 the worker before waiting on any of them.
    let mut client = fleet.client();
    let mut accepted = Vec::new();
    for &s in &victim_seeds {
        match client.call(&Request::Submit(spec(s))).expect("submit") {
            Response::Accepted(id) => accepted.push((id, spec(s))),
            other => panic!("expected accepted, got {other:?}"),
        }
    }
    fleet.kill_worker("shard-1");

    // Every accepted job must still complete — rehashed onto shard-0 —
    // with byte-identical artifacts.
    for (id, s) in &accepted {
        let resp = client.call(&Request::Wait(*id)).expect("wait");
        assert_done_ok_identical(resp, s);
    }
    let log = fleet.coord_log();
    assert!(
        log.contains("gone for good") || log.contains("rehashed"),
        "expected permanent-death rehash in log:\n{log}"
    );

    // The dead shard is visible in status, and new submissions keep
    // working, routed entirely to the survivor.
    match client.call(&Request::Status).expect("status") {
        Response::Status(s) => assert!(
            s.open_circuits.iter().any(|c| c == "shard-1"),
            "dead shard missing from open_circuits: {:?}",
            s.open_circuits
        ),
        other => panic!("expected status, got {other:?}"),
    }
    for &s in victim_seeds.iter().take(2) {
        let resp = client.submit_and_wait(spec(s)).expect("post-death submit");
        assert_done_ok_identical(resp, &spec(s));
    }

    fleet.shutdown();
    // The survivor sealed its journal; the dead shard's journal is, by
    // definition of kill -9, unsealed — its jobs were salvaged instead.
    fleet.assert_sealed("shard-0");
}

/// Oversized frames are rejected with a framed error *before* any
/// allocation, over a real TCP connection to the coordinator.
#[test]
fn oversized_frame_gets_a_framed_error_over_tcp() {
    use hq_bench::service::protocol::read_frame;
    use std::io::{BufReader, Write};

    let _env = env_lock();
    let mut fleet = FleetUnderTest::start("oversize", 1, &[]);
    let mut raw = std::net::TcpStream::connect(&fleet.addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // A length header claiming ~16 exabytes: must be bounced without
    // the coordinator attempting the allocation.
    raw.write_all(format!("{}\n", u64::MAX).as_bytes()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let text = read_frame(&mut reader).expect("framed error").expect("not eof");
    assert!(
        text.contains("rejected bad-request") && text.contains("protocol:"),
        "unexpected reply: {text}"
    );
    drop(reader);
    fleet.shutdown();
}
