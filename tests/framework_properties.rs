//! Property-based tests at the framework level: any workload mix,
//! order, stream count and memsync mode must complete, preserve the
//! application multiset, and obey basic metric sanity.
//!
//! `gaussian` is excluded from the generated mixes — its 1022-launch
//! programs are exercised by the release-mode experiments and would
//! dominate debug-mode test time here.

use hyperq_repro::des::time::Dur;
use hyperq_repro::gpu::prelude::{AppOutcome, FaultKind, FaultPlan};
use hyperq_repro::gpu::types::Dir;
use hyperq_repro::gpu::validate::validate;
use hyperq_repro::hyperq::harness::{run_workload, MemsyncMode, RecoveryPolicy, RunConfig};
use hyperq_repro::hyperq::ordering::ScheduleOrder;
use hyperq_repro::workloads::apps::AppKind;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = AppKind> {
    prop_oneof![
        Just(AppKind::Needle),
        Just(AppKind::Srad),
        Just(AppKind::Knearest),
    ]
}

fn order_strategy() -> impl Strategy<Value = ScheduleOrder> {
    proptest::sample::select(ScheduleOrder::ALL.to_vec())
}

fn memsync_strategy() -> impl Strategy<Value = MemsyncMode> {
    prop_oneof![
        Just(MemsyncMode::Off),
        Just(MemsyncMode::Enqueue),
        Just(MemsyncMode::Synced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_completes(
        kinds in proptest::collection::vec(kind_strategy(), 1..6),
        order in order_strategy(),
        memsync in memsync_strategy(),
        ns in 1u32..6,
        seed in any::<u64>(),
    ) {
        let cfg = RunConfig::concurrent(ns)
            .with_order(order)
            .with_memsync(memsync)
            .with_seed(seed);
        let out = run_workload(&cfg, &kinds).expect("workload completes");

        // The schedule is a permutation of the requested kinds.
        prop_assert_eq!(out.schedule.len(), kinds.len());
        for kind in [AppKind::Needle, AppKind::Srad, AppKind::Knearest] {
            let want = kinds.iter().filter(|&&k| k == kind).count();
            let got = out
                .schedule
                .iter()
                .filter(|l| l.starts_with(kind.name()))
                .count();
            prop_assert_eq!(got, want, "{} multiset mismatch", kind);
        }

        // Metric sanity.
        prop_assert!(out.makespan() > Dur::ZERO);
        prop_assert!(out.energy_j() > 0.0);
        prop_assert!(out.avg_power_w() >= 25.0, "below idle power");
        prop_assert!(out.power.peak_w <= 225.0, "above TDP");
        for app in &out.result.apps {
            prop_assert!(app.finished.is_some());
            prop_assert!(app.kernels_completed > 0);
        }
        // Every generated kind moves data, so Le must be defined.
        prop_assert!(out.mean_le(Dir::HtoD).is_some());
    }

    #[test]
    fn faulty_runs_always_drain_and_validate(
        kinds in proptest::collection::vec(kind_strategy(), 1..5),
        ns in 1u32..5,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        copy_rate in 0.0f64..0.3,
        kernel_rate in 0.0f64..0.3,
        hang_rate in 0.0f64..0.2,
    ) {
        // Whatever the fault plan draws, the simulator must drain (the
        // watchdog reclaims hangs), the result must pass every validate()
        // invariant, and each app must reach a terminal outcome.
        let plan = FaultPlan::none()
            .with_rate(FaultKind::CopyFail, copy_rate)
            .with_rate(FaultKind::KernelFault, kernel_rate)
            .with_rate(FaultKind::KernelHang, hang_rate)
            .with_seed(fault_seed);
        let cfg = RunConfig::concurrent(ns)
            .with_seed(seed)
            .with_faults(plan)
            .with_recovery(RecoveryPolicy::Retry {
                max_attempts: 2,
                backoff: Dur::from_us(100),
            });
        let out = run_workload(&cfg, &kinds).expect("faulty workload still drains");

        let violations = validate(&out.result);
        prop_assert!(violations.is_empty(), "invariants violated: {:?}", violations);
        prop_assert_eq!(out.result.apps.len(), kinds.len());
        for app in &out.result.apps {
            // Terminal outcome: completed (possibly after retries) or
            // failed with a recorded fault kind — never limbo.
            match app.outcome {
                AppOutcome::Completed | AppOutcome::Retried { .. } => {
                    prop_assert!(app.finished.is_some(), "{} completed without finishing", app.label);
                }
                AppOutcome::Failed { .. } => {}
            }
        }
        if out.result.faults.injected() == 0 {
            // No faults drawn: the run must look exactly like a healthy one.
            prop_assert_eq!(out.retries, 0);
            for app in &out.result.apps {
                prop_assert_eq!(app.outcome, AppOutcome::Completed, "{}", app.label);
            }
        }
    }

    #[test]
    fn serial_is_upper_bound_for_these_kinds(
        kinds in proptest::collection::vec(kind_strategy(), 2..5),
        seed in 0u64..64,
    ) {
        let serial =
            run_workload(&RunConfig::serial().with_seed(seed), &kinds).expect("serial");
        let conc = run_workload(
            &RunConfig::concurrent(kinds.len() as u32).with_seed(seed),
            &kinds,
        )
        .expect("concurrent");
        // Underutilizing kinds: concurrency may never lose more than a
        // few percent to scheduling noise.
        let ratio = conc.makespan().as_ns() as f64 / serial.makespan().as_ns() as f64;
        prop_assert!(ratio < 1.05, "concurrent/serial ratio {ratio}");
    }
}
