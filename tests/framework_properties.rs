//! Property-based tests at the framework level: any workload mix,
//! order, stream count and memsync mode must complete, preserve the
//! application multiset, and obey basic metric sanity.
//!
//! `gaussian` is excluded from the generated mixes — its 1022-launch
//! programs are exercised by the release-mode experiments and would
//! dominate debug-mode test time here.

use hyperq_repro::des::time::Dur;
use hyperq_repro::gpu::prelude::{AppOutcome, FaultKind, FaultPlan};
use hyperq_repro::gpu::types::Dir;
use hyperq_repro::gpu::validate::validate;
use hyperq_repro::hyperq::harness::{run_workload, MemsyncMode, RecoveryPolicy, RunConfig};
use hyperq_repro::hyperq::ordering::ScheduleOrder;
use hyperq_repro::workloads::apps::AppKind;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = AppKind> {
    prop_oneof![
        Just(AppKind::Needle),
        Just(AppKind::Srad),
        Just(AppKind::Knearest),
    ]
}

fn order_strategy() -> impl Strategy<Value = ScheduleOrder> {
    proptest::sample::select(ScheduleOrder::ALL.to_vec())
}

fn memsync_strategy() -> impl Strategy<Value = MemsyncMode> {
    prop_oneof![
        Just(MemsyncMode::Off),
        Just(MemsyncMode::Enqueue),
        Just(MemsyncMode::Synced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_completes(
        kinds in proptest::collection::vec(kind_strategy(), 1..6),
        order in order_strategy(),
        memsync in memsync_strategy(),
        ns in 1u32..6,
        seed in any::<u64>(),
    ) {
        let cfg = RunConfig::concurrent(ns)
            .with_order(order)
            .with_memsync(memsync)
            .with_seed(seed);
        let out = run_workload(&cfg, &kinds).expect("workload completes");

        // The schedule is a permutation of the requested kinds.
        prop_assert_eq!(out.schedule.len(), kinds.len());
        for kind in [AppKind::Needle, AppKind::Srad, AppKind::Knearest] {
            let want = kinds.iter().filter(|&&k| k == kind).count();
            let got = out
                .schedule
                .iter()
                .filter(|l| l.starts_with(kind.name()))
                .count();
            prop_assert_eq!(got, want, "{} multiset mismatch", kind);
        }

        // Metric sanity.
        prop_assert!(out.makespan() > Dur::ZERO);
        prop_assert!(out.energy_j() > 0.0);
        prop_assert!(out.avg_power_w() >= 25.0, "below idle power");
        prop_assert!(out.power.peak_w <= 225.0, "above TDP");
        for app in &out.result.apps {
            prop_assert!(app.finished.is_some());
            prop_assert!(app.kernels_completed > 0);
        }
        // Every generated kind moves data, so Le must be defined.
        prop_assert!(out.mean_le(Dir::HtoD).is_some());
    }

    #[test]
    fn faulty_runs_always_drain_and_validate(
        kinds in proptest::collection::vec(kind_strategy(), 1..5),
        ns in 1u32..5,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        copy_rate in 0.0f64..0.3,
        kernel_rate in 0.0f64..0.3,
        hang_rate in 0.0f64..0.2,
    ) {
        // Whatever the fault plan draws, the simulator must drain (the
        // watchdog reclaims hangs), the result must pass every validate()
        // invariant, and each app must reach a terminal outcome.
        let plan = FaultPlan::none()
            .with_rate(FaultKind::CopyFail, copy_rate)
            .with_rate(FaultKind::KernelFault, kernel_rate)
            .with_rate(FaultKind::KernelHang, hang_rate)
            .with_seed(fault_seed);
        let cfg = RunConfig::concurrent(ns)
            .with_seed(seed)
            .with_faults(plan)
            .with_recovery(RecoveryPolicy::Retry {
                max_attempts: 2,
                backoff: Dur::from_us(100),
            });
        let out = run_workload(&cfg, &kinds).expect("faulty workload still drains");

        let violations = validate(&out.result);
        prop_assert!(violations.is_empty(), "invariants violated: {:?}", violations);
        prop_assert_eq!(out.result.apps.len(), kinds.len());
        for app in &out.result.apps {
            // Terminal outcome: completed (possibly after retries) or
            // failed with a recorded fault kind — never limbo.
            match app.outcome {
                AppOutcome::Completed | AppOutcome::Retried { .. } => {
                    prop_assert!(app.finished.is_some(), "{} completed without finishing", app.label);
                }
                AppOutcome::Failed { .. } => {}
            }
        }
        if out.result.faults.injected() == 0 {
            // No faults drawn: the run must look exactly like a healthy one.
            prop_assert_eq!(out.retries, 0);
            for app in &out.result.apps {
                prop_assert_eq!(app.outcome, AppOutcome::Completed, "{}", app.label);
            }
        }
    }

    #[test]
    fn serial_is_upper_bound_for_these_kinds(
        kinds in proptest::collection::vec(kind_strategy(), 2..5),
        seed in 0u64..64,
    ) {
        let serial =
            run_workload(&RunConfig::serial().with_seed(seed), &kinds).expect("serial");
        let conc = run_workload(
            &RunConfig::concurrent(kinds.len() as u32).with_seed(seed),
            &kinds,
        )
        .expect("concurrent");
        // Underutilizing kinds: concurrency may never lose more than a
        // few percent to scheduling noise.
        let ratio = conc.makespan().as_ns() as f64 / serial.makespan().as_ns() as f64;
        prop_assert!(ratio < 1.05, "concurrent/serial ratio {ratio}");
    }
}

// ---------------------------------------------------------------------
// Durability codecs. The integrity scrubber's whole contract rests on
// the journal and scenario-cache line formats *detecting* damage: a
// flipped byte or a truncated write must surface as a bad line, torn
// tail, or verification error — never silently parse into a different
// record. These properties hammer both codecs with arbitrary
// single-byte corruption and arbitrary cuts.
// ---------------------------------------------------------------------

use hq_bench::service::{JobSpec, Journal};
use std::path::PathBuf;
use std::sync::OnceLock;

struct CorruptionCorpus {
    /// A sealed journal: two accepts, one done (with digest), seal.
    journal_bytes: Vec<u8>,
    /// A real scenario-cache entry produced through the miss path.
    cache_text: String,
    /// The entry's filename key (hex stem), for the preimage check.
    cache_key: u64,
    scratch: PathBuf,
}

fn corpus() -> &'static CorruptionCorpus {
    static FIX: OnceLock<CorruptionCorpus> = OnceLock::new();
    FIX.get_or_init(|| {
        let root = std::env::temp_dir().join(format!("hq-props-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("props scratch dir");
        // Point the results dir (journal defaults, scenario cache) at
        // the scratch root for this whole test process.
        std::env::set_var("HQ_RESULTS", &root);
        let jpath = root.join("fixture.wal");
        {
            let (mut j, _) = Journal::open(&jpath).expect("fixture journal");
            let spec = JobSpec::default();
            j.accept(1, &spec).expect("accept 1");
            j.done(1, "ok", Some(0xFEED_FACE)).expect("done 1");
            j.accept(2, &spec).expect("accept 2");
            j.seal().expect("seal");
        }
        let journal_bytes = std::fs::read(&jpath).expect("read fixture journal");
        let _ = hq_bench::service::run_job_direct(&JobSpec::default()).expect("direct run");
        let entry = std::fs::read_dir(hq_bench::scenario::cache_dir())
            .expect("cache dir")
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "v2"))
            .expect("direct run populated the cache");
        let stem = entry.path();
        let stem = stem.file_stem().unwrap().to_str().unwrap().to_string();
        let cache_key = u64::from_str_radix(&stem, 16).expect("hex cache key");
        let cache_text = std::fs::read_to_string(entry.path()).expect("read cache entry");
        CorruptionCorpus {
            journal_bytes,
            cache_text,
            cache_key,
            scratch: root,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn journal_detects_any_single_byte_corruption(
        pos in 0usize..1 << 20,
        xor in 1u32..256,
    ) {
        let fix = corpus();
        let mut bytes = fix.journal_bytes.clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor as u8;
        let path = fix.scratch.join("flip.wal");
        std::fs::write(&path, &bytes).expect("write corrupted journal");
        let v = Journal::verify(&path).expect("verify runs");
        let flagged = !v.header_ok || !v.bad_lines.is_empty() || v.torn_tail_bytes > 0;
        prop_assert!(
            flagged,
            "flipping byte {pos} with {xor:#04x} went undetected"
        );
        // Never mis-parse: whatever survives must be records we wrote.
        for (id, _) in &v.accepted {
            prop_assert!(*id == 1 || *id == 2, "invented accept record id {id}");
        }
        for (id, status, digest) in &v.completed {
            prop_assert_eq!(*id, 1, "invented done record");
            prop_assert_eq!(status.as_str(), "ok");
            prop_assert_eq!(*digest, Some(0xFEED_FACE));
        }
    }

    #[test]
    fn journal_truncation_yields_a_prefix_or_is_flagged(cut in 0usize..1 << 20) {
        let fix = corpus();
        let full = &fix.journal_bytes;
        let cut = cut % (full.len() + 1);
        let path = fix.scratch.join("cut.wal");
        std::fs::write(&path, &full[..cut]).expect("write truncated journal");
        let v = Journal::verify(&path).expect("verify runs");
        let at_line_boundary = cut == 0 || full[cut - 1] == b'\n';
        if at_line_boundary {
            // A crash between appends: a clean prefix, nothing flagged.
            prop_assert!(v.bad_lines.is_empty(), "clean prefix flagged: {:?}", v.bad_lines);
            prop_assert_eq!(v.torn_tail_bytes, 0);
        } else {
            // Mid-record cut: must be flagged as torn or unparseable.
            prop_assert!(
                !v.header_ok || v.torn_tail_bytes > 0 || !v.bad_lines.is_empty(),
                "mid-record cut at {cut} went undetected"
            );
        }
        for (id, _) in &v.accepted {
            prop_assert!(*id == 1 || *id == 2, "truncation invented accept id {id}");
        }
    }

    #[test]
    fn cache_entry_detects_any_single_byte_corruption(
        pos in 0usize..1 << 20,
        xor in 1u32..256,
    ) {
        let fix = corpus();
        let mut bytes = fix.cache_text.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor as u8;
        match String::from_utf8(bytes) {
            // Non-UTF-8 bytes never reach the codec: read_to_string
            // fails first, which is detection too.
            Err(_) => {}
            Ok(s) => prop_assert!(
                hq_bench::scenario::verify_cache_entry(&s, Some(fix.cache_key)).is_err(),
                "flipping byte {pos} with {xor:#04x} went undetected"
            ),
        }
    }

    #[test]
    fn cache_entry_truncation_is_always_detected(cut in 0usize..1 << 20) {
        let fix = corpus();
        let text = &fix.cache_text;
        let mut cut = cut % text.len();
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(
            hq_bench::scenario::verify_cache_entry(&text[..cut], Some(fix.cache_key)).is_err(),
            "truncation to {cut} bytes went undetected"
        );
        // The untouched entry still verifies — the corpus is valid.
        prop_assert!(
            hq_bench::scenario::verify_cache_entry(text, Some(fix.cache_key)).is_ok()
        );
    }
}
