#!/usr/bin/env bash
# Local CI gate: run this before sending a PR.
#
#   scripts/ci.sh            # release build + full test suite + clippy
#
# Mirrors what the tier-1 check runs (build + test at the workspace
# root) and adds clippy with warnings denied. Clippy is skipped with a
# notice when the component is not installed (e.g. minimal toolchains).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint (rustup component add clippy)"
fi

echo "==> ci.sh: all checks passed"
