#!/usr/bin/env bash
# Local CI gate: run this before sending a PR.
#
#   scripts/ci.sh            # release build + full test suite + clippy
#
# Mirrors what the tier-1 check runs (build + test at the workspace
# root), then adds the slower stages:
#   1. release-mode `--include-ignored` tests — the experiment smoke
#      tests and the suite determinism tests are `#[ignore]`d because
#      they take minutes in debug builds; they run here in release,
#   2. the perf-regression gate: `perf_baseline --check` re-times the
#      event-queue patterns, the end-to-end sim, the label-heavy
#      interner stress, the suite cold/warm scenario-cache pass and the
#      chaos serial-vs-batched case throughput and the serving hot
#      path (8 concurrent clients against a real server), failing on a
#      >20% drop against the committed BENCH_PR9.json or a miss of the
#      absolute floors (sim ≥1.5x over the PR 2 baseline, suite
#      warm-cache speedup ≥1.3x, chaos batch speedup ≥10x, serving
#      ≥180 jobs/s with <1 fsync per accept; up to three best-of
#      attempts so only repeatable slowdowns fail),
#   3. a scenario-cache correctness smoke: the quick suite runs twice
#      into one results directory; the second run must serve ≥90% of
#      its simulations from the cache and reproduce every artifact
#      byte-for-byte,
#   4. a fixed-seed chaos soak: 200 random audited cases (random device
#      geometry x workload mix x fault plan) must all run with zero
#      invariant-auditor and validate() violations; a failure shrinks
#      to a JSON repro under results/ replayable with `hyperq repro`.
#      The soak runs twice — serial and `--batch 16` through the
#      K-lane merged-queue executor — and both must be clean,
#   5. a service crash-recovery smoke: start `hyperq serve`, prove that
#      panicking and deadline-exceeded jobs come back as structured
#      errors while the server keeps serving, then `kill -9` it
#      mid-burst, restart with `--recover-only`, and require that the
#      journal replays the unfinished jobs and every accepted job's
#      artifact is byte-identical to a direct `run_scenario` rendering,
#   5b. a serving-throughput gate: a standalone server with batched
#      dispatch and a 200 µs group-commit window serves a warm
#      8-client loadgen burst; jobs/s-per-core gates against the
#      committed BENCH_PR9.json (≥2x the PR 6 single-job serving path),
#      the burst must land strictly under one journal fsync per
#      accepted job, and a separate --verify burst proves batched-path
#      artifacts stay byte-identical to direct runs,
#   6. a fleet failover smoke: start the TCP coordinator with three
#      supervised worker processes, drive a verified loadgen burst that
#      gates jobs/s-per-core against the committed BENCH_PR6.json (>20%
#      regression fails, with re-measurement), then a second burst that
#      `kill -9`s a worker mid-burst — every accepted job must still
#      complete with artifacts byte-identical to direct runs — and a
#      SIGTERM drain that must seal every shard's journal,
#   7. a multi-tenant overload gate: one paced tenant is measured solo,
#      then re-measured while a flooding tenant slams the same server
#      with cold jobs under a per-tenant queue quota. The paced
#      tenant's p99 must stay within 3x its solo baseline, the paced
#      tenant must see zero sheds and zero losses, the flood tenant
#      must see nonzero sheds (the quota actually bit), per-tenant
#      stats must show up in --status, and a kill -9 mid-backlog
#      followed by --recover-only must replay every accepted job with
#      artifacts byte-identical to direct runs — sheds never reach the
#      journal, accepted work always survives,
#   7b. a torture-and-scrub gate: a seeded `hyperq torture` soak runs
#      multi-tenant service bursts under joint host-I/O and network
#      fault plans (short writes, EINTR, fsync EIO, ENOSPC, torn
#      renames, bit flips, mid-frame disconnects, trickle reads, lost
#      accepted-acks) and must lose zero accepted jobs and dedup every
#      duplicate submit; then a clean store gets a cache entry and an
#      artifact byte-flipped, `hyperq scrub --repair` must heal both by
#      deterministic re-execution, a second verify-only `hyperq scrub`
#      must exit 0, and the repaired artifact must be byte-identical
#      to a direct rendering,
#   8. clippy with warnings denied (skipped with a notice when the
#      component is not installed, e.g. minimal toolchains).
#
# Every timed or served binary goes through fresh_bin first: `cargo
# build --release` has been observed to report success while leaving a
# stale binary behind; the guard compares the binary's mtime against
# the source tree and forces a rebuild when it lags.

set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_RESULTS=""
SMOKE_SNAP=""
SMOKE_LOG=""
SVC_DIR=""
SRV_PID=""
THR_DIR=""
THR_PID=""
FLEET_TMP=""
FLEET_PID=""
OVL_DIR=""
OVL_PID=""
FLOOD_PID=""
TOR_DIR=""
SCRUB_DIR=""
SCRUB_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    [ -n "$THR_PID" ] && kill -9 "$THR_PID" 2>/dev/null || true
    [ -n "$OVL_PID" ] && kill -9 "$OVL_PID" 2>/dev/null || true
    [ -n "$FLOOD_PID" ] && kill -9 "$FLOOD_PID" 2>/dev/null || true
    [ -n "$SCRUB_PID" ] && kill -9 "$SCRUB_PID" 2>/dev/null || true
    if [ -n "$FLEET_PID" ]; then
        kill -9 "$FLEET_PID" 2>/dev/null || true
        # The coordinator's workers survive a kill -9 of their parent.
        for pf in "$FLEET_TMP"/fleet/shard-*/worker.pid; do
            [ -f "$pf" ] && kill -9 "$(cat "$pf")" 2>/dev/null || true
        done
    fi
    [ -n "$SMOKE_RESULTS" ] && rm -rf "$SMOKE_RESULTS"
    [ -n "$SMOKE_SNAP" ] && rm -rf "$SMOKE_SNAP"
    [ -n "$SMOKE_LOG" ] && rm -f "$SMOKE_LOG"
    [ -n "$SVC_DIR" ] && rm -rf "$SVC_DIR"
    [ -n "$FLEET_TMP" ] && rm -rf "$FLEET_TMP"
    [ -n "$OVL_DIR" ] && rm -rf "$OVL_DIR"
    [ -n "$TOR_DIR" ] && rm -rf "$TOR_DIR"
    [ -n "$SCRUB_DIR" ] && rm -rf "$SCRUB_DIR"
    true
}
trap cleanup EXIT

# Guard against the stale-release-binary trap: build the specific bin,
# then require it to be newer than every workspace source file; if not,
# delete it and rebuild once, failing hard if it is still stale.
fresh_bin() {
    local pkg="$1" bin="$2" path="target/release/$2"
    cargo build --release -q -p "$pkg" --bin "$bin"
    if [ -n "$(find src crates -name '*.rs' -newer "$path" 2>/dev/null | head -1)" ]; then
        echo "stale release binary $bin detected; forcing a rebuild"
        rm -f "$path"
        cargo build --release -q -p "$pkg" --bin "$bin"
        if [ -n "$(find src crates -name '*.rs' -newer "$path" 2>/dev/null | head -1)" ]; then
            echo "FAIL: $bin is still older than the source tree after a forced rebuild"
            exit 1
        fi
    fi
}

# Pull one flat numeric field out of a loadgen --json report.
jfield() { sed -n "s/^  \"$2\": \([0-9.]*\),\{0,1\}\$/\1/p" "$1"; }

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --release -q -- --include-ignored"
cargo test --workspace --release -q -- --include-ignored

echo "==> perf_baseline --check BENCH_PR9.json"
fresh_bin hq-bench perf_baseline
target/release/perf_baseline --check BENCH_PR9.json

echo "==> scenario-cache correctness smoke (quick suite twice)"
fresh_bin hq-bench all_experiments
SMOKE_RESULTS="$(mktemp -d)"
SMOKE_SNAP="$(mktemp -d)"
SMOKE_LOG="$(mktemp)"
HQ_RESULTS="$SMOKE_RESULTS" target/release/all_experiments --quick >/dev/null
cp "$SMOKE_RESULTS"/*.md "$SMOKE_RESULTS"/*.csv "$SMOKE_SNAP"/
HQ_RESULTS="$SMOKE_RESULTS" target/release/all_experiments --quick >/dev/null 2>"$SMOKE_LOG"
# The warm run must be served almost entirely from the scenario cache
# (the counters land on stderr as "scenario cache: H hits, M misses").
awk '/^scenario cache:/ {
    h = $3 + 0; m = $5 + 0;
    printf "warm run: %d hits, %d misses\n", h, m;
    if (h + m == 0 || h < 0.9 * (h + m)) { print "FAIL: warm-run cache hit rate below 90%"; exit 1 }
    found = 1
}
END { if (!found) { print "FAIL: no scenario-cache counter line in warm-run stderr"; exit 1 } }' "$SMOKE_LOG"
for f in "$SMOKE_SNAP"/*; do
    cmp "$f" "$SMOKE_RESULTS/$(basename "$f")" \
        || { echo "FAIL: artifact $(basename "$f") differs between cold and warm-cache runs"; exit 1; }
done
echo "warm-cache rerun reproduced every artifact byte-for-byte"

echo "==> chaos soak (200 cases, seed 7, serial then batch 16)"
fresh_bin hq-bench chaos
target/release/chaos --cases 200 --seed 7
target/release/chaos --cases 200 --seed 7 --batch 16

echo "==> service crash-recovery smoke"
fresh_bin hyperq-repro hyperq
HQ=target/release/hyperq
SVC_DIR="$(mktemp -d)"
SOCK="$SVC_DIR/hq.sock"
HQ_RESULTS="$SVC_DIR" "$HQ" serve --socket "$SOCK" --workers 1 --queue-depth 16 \
    --dispatch-batch 8 --commit-window-us 200 >"$SVC_DIR/serve.log" 2>&1 &
SRV_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "FAIL: server never bound $SOCK"; cat "$SVC_DIR/serve.log"; exit 1; }

# Structured failures must come back as answers, not connection drops.
PANIC_OUT="$(HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" -w needle --panic)"
echo "$PANIC_OUT" | grep -q "panicked" \
    || { echo "FAIL: scripted panic did not answer 'panicked': $PANIC_OUT"; exit 1; }
# A 1 ms deadline behind a pinned worker expires while queued. (The
# admission forecaster only sheds classes it has served before; this
# signature is first-contact, so the job is accepted and then expires —
# --deadline-ms 0 is now a parse-time usage error.)
HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" --no-wait -w "gaussian*4+srad*4" --streams 8 --seed 50 >/dev/null
DEADLINE_OUT="$(HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" -w needle --deadline-ms 1 --seed 5)"
echo "$DEADLINE_OUT" | grep -q "deadline-exceeded" \
    || { echo "FAIL: 1 ms deadline did not answer 'deadline-exceeded': $DEADLINE_OUT"; exit 1; }
RC=0; "$HQ" submit --socket "$SOCK" -w needle --deadline-ms 0 >/dev/null 2>&1 || RC=$?
[ "$RC" = 2 ] || { echo "FAIL: --deadline-ms 0 must be a usage error (exit 2), got $RC"; exit 1; }
# ... and the server keeps serving afterwards.
OK_OUT="$(HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" -w gaussian+needle --streams 4 --seed 9)"
echo "$OK_OUT" | grep -q "^job [0-9]*: ok" \
    || { echo "FAIL: healthy job after failures did not succeed: $OK_OUT"; exit 1; }
ART="$(echo "$OK_OUT" | sed -n 's/^artifact: //p')"
HQ_RESULTS="$SVC_DIR" "$HQ" submit --direct -w gaussian+needle --streams 4 --seed 9 >"$SVC_DIR/direct.tmp"
cmp "$ART" "$SVC_DIR/direct.tmp" \
    || { echo "FAIL: served artifact differs from direct run"; exit 1; }

# Burst: one heavy job pins the single worker, light jobs queue behind
# it, and kill -9 lands mid-burst — the journal must carry them all.
HEAVY_WL="gaussian*6+srad*6"
HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" --no-wait -w "$HEAVY_WL" --streams 16 --seed 100 >/dev/null
for s in 101 102 103 104 105; do
    HQ_RESULTS="$SVC_DIR" "$HQ" submit --socket "$SOCK" --no-wait -w gaussian+needle --streams 4 --seed "$s" >/dev/null
done
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

REC_OUT="$(HQ_RESULTS="$SVC_DIR" "$HQ" serve --socket "$SOCK" --recover-only 2>/dev/null)"
echo "$REC_OUT" | head -1
REPLAYED="$(printf '%s\n' "$REC_OUT" | sed -n 's/^recovery: replayed \([0-9]*\) job(s).*/\1/p')"
[ -n "$REPLAYED" ] || { echo "FAIL: no recovery summary in: $REC_OUT"; exit 1; }
[ "$REPLAYED" -ge 1 ] || { echo "FAIL: kill -9 mid-burst left nothing to replay"; exit 1; }

# Every burst job's artifact must be byte-identical to a direct
# rendering of the same spec, whether it ran before the crash or was
# replayed from the journal after it.
check_artifact() {
    local wl="$1" streams="$2" seed="$3" f
    HQ_RESULTS="$SVC_DIR" "$HQ" submit --direct -w "$wl" --streams "$streams" --seed "$seed" >"$SVC_DIR/direct.tmp"
    for f in "$SVC_DIR"/service/job-*.out; do
        cmp -s "$f" "$SVC_DIR/direct.tmp" && return 0
    done
    echo "FAIL: no served artifact matches direct run of -w $wl --streams $streams --seed $seed"
    return 1
}
check_artifact "$HEAVY_WL" 16 100
for s in 101 102 103 104 105; do
    check_artifact gaussian+needle 4 "$s"
done
# A second recovery pass finds nothing left to do.
REC2="$(HQ_RESULTS="$SVC_DIR" "$HQ" serve --socket "$SOCK" --recover-only 2>/dev/null)"
printf '%s\n' "$REC2" | grep -q "^recovery: replayed 0 job(s)" \
    || { echo "FAIL: second recovery pass was not idempotent: $REC2"; exit 1; }
echo "crash recovery replayed $REPLAYED job(s); all burst artifacts byte-identical to direct runs"

echo "==> serving-throughput gate (batched dispatch + group-commit journal)"
fresh_bin hq-bench loadgen
# The throughput server's journal and artifacts live on tmpfs when the
# box has one: the CI VM's block device meters fsyncs through a
# burst-credit IOPS bucket, so on-disk serving throughput measures the
# hypervisor's token refill rate (4x run-to-run spread on an idle
# box), not the serving path. tmpfs keeps the syscall and coalescing
# behaviour — the fsync and occupancy ratios are unchanged — with
# run-to-run spread under 10%. Durability itself is proven by the
# crash-recovery smoke above and the journal test suite, on disk.
THR_DIR="$(mktemp -d -p /dev/shm 2>/dev/null || mktemp -d)"
THR_SOCK="$THR_DIR/hq.sock"
HQ_RESULTS="$THR_DIR" "$HQ" serve --socket "$THR_SOCK" --workers 2 --queue-depth 64 \
    --dispatch-batch 8 --commit-window-us 200 >"$THR_DIR/serve.log" 2>&1 &
THR_PID=$!
for _ in $(seq 1 100); do [ -S "$THR_SOCK" ] && break; sleep 0.1; done
[ -S "$THR_SOCK" ] || { echo "FAIL: throughput server never bound $THR_SOCK"; cat "$THR_DIR/serve.log"; exit 1; }

# Warmup burst primes the scenario cache for loadgen's default seed
# pool; the measured bursts then exercise the pure serving hot path.
HQ_RESULTS="$THR_DIR" target/release/loadgen --socket "$THR_SOCK" \
    --jobs 32 --conns 8 >/dev/null

# Best-of-3 warm burst against the committed baseline: --check
# enforces ≥80% of BENCH_PR9.json's (derated, loadgen-comparable)
# jobs/s-per-core, which is itself well over 2x the PR 6
# one-fsync-per-accept serving path. The throughput bursts run
# without --verify: re-running every job in-process would steal the
# single CPU from the server under measurement; fidelity gets its own
# burst below. 640 jobs keeps the measured window long enough that a
# single slow scheduler slice cannot dominate the figure.
THR_OK=0
for attempt in 1 2 3; do
    if HQ_RESULTS="$THR_DIR" target/release/loadgen --socket "$THR_SOCK" \
        --jobs 640 --conns 8 --json "$THR_DIR/burst.json" --check BENCH_PR9.json; then
        THR_OK=1
        break
    fi
    echo "serving gate attempt $attempt missed; re-measuring"
done
[ "$THR_OK" = 1 ] || { echo "FAIL: serving throughput gate missed on every attempt"; exit 1; }

# Separate verified burst (unchecked for speed): every artifact served
# through the batched path must be byte-identical to a direct run —
# loadgen exits non-zero on any lost or diverging job.
HQ_RESULTS="$THR_DIR" target/release/loadgen --socket "$THR_SOCK" \
    --jobs 64 --conns 8 --verify >/dev/null \
    || { echo "FAIL: batched-path artifacts diverge from direct runs"; exit 1; }

# Group commit must actually bite under the 8-client burst: strictly
# fewer than one journal fsync per accepted job.
THR_FSY="$(jfield "$THR_DIR/burst.json" fsyncs_per_accept)"
THR_OCC="$(jfield "$THR_DIR/burst.json" batch_occupancy)"
awk -v f="$THR_FSY" 'BEGIN {
    if (f == "" || f + 0 >= 1.0) {
        printf "FAIL: %s fsyncs per accept is not < 1 under the 8-client burst\n", f; exit 1
    }
}'
HQ_RESULTS="$THR_DIR" "$HQ" submit --socket "$THR_SOCK" --shutdown >/dev/null 2>&1 || kill "$THR_PID" 2>/dev/null || true
wait "$THR_PID" 2>/dev/null || true
THR_PID=""
echo "serving gate: fsyncs/accept $THR_FSY, batch occupancy $THR_OCC"

echo "==> fleet failover smoke (3 workers, kill -9 mid-burst)"
FLEET_TMP="$(mktemp -d)"
FLEET_DIR="$FLEET_TMP/fleet"
HQ_RESULTS="$FLEET_TMP/coord-results" "$HQ" serve --tcp 127.0.0.1:0 --fleet 3 \
    --fleet-dir "$FLEET_DIR" --heartbeat-ms 100 \
    --dispatch-batch 8 --commit-window-us 200 >"$FLEET_TMP/fleet.log" 2>&1 &
FLEET_PID=$!
for _ in $(seq 1 300); do [ -s "$FLEET_DIR/addr" ] && break; sleep 0.1; done
[ -s "$FLEET_DIR/addr" ] || { echo "FAIL: coordinator never published its address"; cat "$FLEET_TMP/fleet.log"; exit 1; }
ADDR="$(cat "$FLEET_DIR/addr")"

# Healthy burst: verified artifacts, with a jobs/s-per-core gate against
# the committed baseline. Re-measure on a miss: shared CI boxes jitter.
GATE_OK=0
for attempt in 1 2 3; do
    if HQ_RESULTS="$FLEET_TMP/client-results" target/release/loadgen --tcp "$ADDR" \
        --jobs 48 --conns 4 --verify --json "$FLEET_TMP/burst.json" --check BENCH_PR6.json; then
        GATE_OK=1
        break
    fi
    echo "fleet gate attempt $attempt missed; re-measuring"
done
[ "$GATE_OK" = 1 ] || { echo "FAIL: fleet throughput gate missed on every attempt"; exit 1; }

# Chaos burst: kill -9 one worker after the 5th completion. Zero
# accepted-job loss and byte-identical artifacts, or loadgen exits 1.
HQ_RESULTS="$FLEET_TMP/client-results" target/release/loadgen --tcp "$ADDR" \
    --jobs 40 --conns 4 --verify \
    --kill-pidfile "$FLEET_DIR/shard-1/worker.pid" --kill-after 5 \
    || { echo "FAIL: jobs lost or diverged across a mid-burst worker crash"; cat "$FLEET_TMP/fleet.log"; exit 1; }
grep -q "restarting shard-1 in place" "$FLEET_TMP/fleet.log" \
    || { echo "FAIL: supervisor never restarted the killed worker"; cat "$FLEET_TMP/fleet.log"; exit 1; }

# Graceful drain: SIGTERM must seal every shard's journal and reap all
# worker processes before the coordinator exits 0.
kill -TERM "$FLEET_PID"
FLEET_OK=0
for _ in $(seq 1 600); do
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then FLEET_OK=1; break; fi
    sleep 0.1
done
[ "$FLEET_OK" = 1 ] || { echo "FAIL: coordinator did not drain after SIGTERM"; cat "$FLEET_TMP/fleet.log"; exit 1; }
wait "$FLEET_PID" 2>/dev/null || { echo "FAIL: coordinator exited non-zero"; cat "$FLEET_TMP/fleet.log"; exit 1; }
FLEET_PID=""
grep -q "drained, workers sealed and reaped" "$FLEET_TMP/fleet.log" \
    || { echo "FAIL: no drain summary in coordinator log"; cat "$FLEET_TMP/fleet.log"; exit 1; }
for shard in shard-0 shard-1 shard-2; do
    tail -1 "$FLEET_DIR/$shard/journal/service.wal" | awk -v s="$shard" \
        '{ if ($2 != "S") { print "FAIL: " s " journal not sealed (last record type " $2 ")"; exit 1 } }' \
        || exit 1
done
echo "fleet smoke: gate passed, mid-burst crash lost nothing, all journals sealed"

echo "==> multi-tenant overload gate (flood vs paced, kill -9 mid-backlog)"
OVL_DIR="$(mktemp -d)"
OVL_SOCK="$OVL_DIR/hq.sock"
HQ_RESULTS="$OVL_DIR" "$HQ" serve --socket "$OVL_SOCK" --workers 2 --queue-depth 32 \
    --tenant-max-queued 4 --dispatch-batch 8 --commit-window-us 200 \
    >"$OVL_DIR/serve.log" 2>&1 &
OVL_PID=$!
for _ in $(seq 1 100); do [ -S "$OVL_SOCK" ] && break; sleep 0.1; done
[ -S "$OVL_SOCK" ] || { echo "FAIL: overload server never bound $OVL_SOCK"; cat "$OVL_DIR/serve.log"; exit 1; }

# Phase 0: the paced tenant alone, cold seeds — the latency baseline.
HQ_RESULTS="$OVL_DIR" target/release/loadgen --socket "$OVL_SOCK" --tenant paced \
    --jobs 20 --conns 1 --pace-ms 2 --seed 9000 --seed-pool 100000 --verify \
    --json "$OVL_DIR/solo.json" >/dev/null
# Phase 1: a flooding tenant slams the server with distinct cold jobs
# over more connections than its quota admits (--allow-shed: it takes
# each shed as the answer), while the paced tenant re-runs fresh cold
# seeds. The flood must shed; the paced tenant must not notice.
HQ_RESULTS="$OVL_DIR" target/release/loadgen --socket "$OVL_SOCK" --tenant flood \
    --allow-shed --jobs 6000 --conns 8 --seed 50000 --seed-pool 100000 \
    --json "$OVL_DIR/flood.json" >/dev/null 2>&1 &
FLOOD_PID=$!
sleep 0.3
HQ_RESULTS="$OVL_DIR" target/release/loadgen --socket "$OVL_SOCK" --tenant paced \
    --jobs 20 --conns 1 --pace-ms 2 --seed 12000 --seed-pool 100000 --verify \
    --json "$OVL_DIR/paced.json" >/dev/null
STATUS_OUT="$(HQ_RESULTS="$OVL_DIR" "$HQ" submit --socket "$OVL_SOCK" --status)"
wait "$FLOOD_PID" || { echo "FAIL: flood loadgen lost accepted jobs"; exit 1; }
FLOOD_PID=""

SOLO_P99="$(jfield "$OVL_DIR/solo.json" p99_ms)"
PACED_P99="$(jfield "$OVL_DIR/paced.json" p99_ms)"
PACED_FAIL="$(jfield "$OVL_DIR/paced.json" failures)"
PACED_SHED="$(jfield "$OVL_DIR/paced.json" shed)"
FLOOD_SHED="$(jfield "$OVL_DIR/flood.json" shed)"
echo "overload: solo p99 ${SOLO_P99} ms, contended p99 ${PACED_P99} ms, flood shed ${FLOOD_SHED}"
[ "$PACED_FAIL" = 0 ] || { echo "FAIL: paced tenant lost $PACED_FAIL job(s) under flood"; exit 1; }
[ "$PACED_SHED" = 0 ] || { echo "FAIL: paced tenant was shed $PACED_SHED time(s) despite staying under quota"; exit 1; }
awk -v shed="$FLOOD_SHED" 'BEGIN { if (shed + 0 < 1) { print "FAIL: flood tenant was never shed — quota did not bite"; exit 1 } }'
awk -v solo="$SOLO_P99" -v contended="$PACED_P99" 'BEGIN {
    floor = solo; if (floor < 50) floor = 50;
    if (contended > 3 * floor) {
        printf "FAIL: paced p99 %.3f ms exceeds 3x solo baseline %.3f ms\n", contended, floor; exit 1
    }
}'
grep -q "^tenant flood: .* shed [1-9]" <<<"$STATUS_OUT" \
    || { echo "FAIL: --status has no flood tenant shed line: $STATUS_OUT"; exit 1; }
grep -q "^tenant paced: .* shed 0" <<<"$STATUS_OUT" \
    || { echo "FAIL: --status has no clean paced tenant line: $STATUS_OUT"; exit 1; }

# Phase 2: accepted multi-tenant backlog survives kill -9. Two heavy
# jobs pin both workers, lights from two tenants queue behind them
# (each inside its 4-deep tenant quota), and the crash lands with the
# backlog in the journal. Accepted ids are captured so each artifact
# can be checked by id after replay.
OVL_HEAVY="gaussian*6+srad*6"
OVL_JOBS=()
ovl_submit() {
    local tenant="$1" wl="$2" streams="$3" seed="$4" out id
    out="$(HQ_RESULTS="$OVL_DIR" "$HQ" submit --socket "$OVL_SOCK" --no-wait \
        --tenant "$tenant" -w "$wl" --streams "$streams" --seed "$seed")"
    id="${out#accepted job }"
    { [ -n "$id" ] && [ "$id" != "$out" ]; } \
        || { echo "FAIL: backlog submit for $tenant seed $seed not accepted: $out"; exit 1; }
    OVL_JOBS+=("$id $wl $streams $seed")
}
ovl_submit acme "$OVL_HEAVY" 16 200
ovl_submit globex "$OVL_HEAVY" 16 210
for s in 201 202 203; do ovl_submit acme gaussian+needle 4 "$s"; done
for s in 204 205 206; do ovl_submit globex gaussian+needle 4 "$s"; done
kill -9 "$OVL_PID"
wait "$OVL_PID" 2>/dev/null || true
OVL_PID=""

INSPECT_OUT="$("$HQ" journal inspect "$OVL_DIR/journal/service.wal")"
grep -q "^tenant acme:" <<<"$INSPECT_OUT" \
    || { echo "FAIL: journal inspect lost tenant acme: $INSPECT_OUT"; exit 1; }
grep -q "^tenant globex:" <<<"$INSPECT_OUT" \
    || { echo "FAIL: journal inspect lost tenant globex: $INSPECT_OUT"; exit 1; }
grep -q "sealed=no" <<<"$INSPECT_OUT" \
    || { echo "FAIL: kill -9 left a sealed journal?: $INSPECT_OUT"; exit 1; }

OVL_REC="$(HQ_RESULTS="$OVL_DIR" "$HQ" serve --socket "$OVL_SOCK" --recover-only 2>/dev/null)"
OVL_REPLAYED="$(printf '%s\n' "$OVL_REC" | sed -n 's/^recovery: replayed \([0-9]*\) job(s).*/\1/p')"
[ -n "$OVL_REPLAYED" ] && [ "$OVL_REPLAYED" -ge 1 ] \
    || { echo "FAIL: overload kill -9 left nothing to replay: $OVL_REC"; exit 1; }
# Tenancy never leaks into the simulation: every replayed artifact
# must be byte-identical to a tenant-less --direct rendering.
for job in "${OVL_JOBS[@]}"; do
    set -- $job
    id="$1" wl="$2" streams="$3" seed="$4"
    HQ_RESULTS="$OVL_DIR" "$HQ" submit --direct -w "$wl" --streams "$streams" --seed "$seed" >"$OVL_DIR/direct.tmp"
    cmp "$OVL_DIR/service/job-$id.out" "$OVL_DIR/direct.tmp" \
        || { echo "FAIL: job $id (-w $wl --streams $streams --seed $seed) diverges from direct run"; exit 1; }
done
echo "overload gate: paced p99 held under flood, $OVL_REPLAYED job(s) replayed, all tenant artifacts byte-identical"

echo "==> torture soak (joint I/O + network fault plans, seed 11)"
TOR_DIR="$(mktemp -d)"
# Each case runs a real server on a unix socket under a per-case fault
# plan; the harness itself enforces zero accepted-job loss, duplicate
# dedup, journal durability and a clean scrub --repair, exiting 1 with
# a shrunk JSON repro on the first violation.
HQ_RESULTS="$TOR_DIR" "$HQ" torture --cases 15 --seed 11 --repro-dir "$TOR_DIR/repro" \
    || { echo "FAIL: torture soak violated an invariant"; cat "$TOR_DIR"/repro/torture-*.json 2>/dev/null; exit 1; }

echo "==> scrub self-healing gate (byte-flip cache entry + artifact, repair, re-verify)"
# XOR one byte in place: guaranteed to actually change the file, unlike
# overwriting with a constant that might already be there.
flip_byte() {
    python3 -c '
import sys
path, off = sys.argv[1], int(sys.argv[2])
with open(path, "r+b") as f:
    data = bytearray(f.read())
    data[off % len(data)] ^= 0x41
    f.seek(0)
    f.write(data)
' "$1" "$2"
}
SCRUB_DIR="$(mktemp -d)"
SCRUB_SOCK="$SCRUB_DIR/hq.sock"
HQ_RESULTS="$SCRUB_DIR" "$HQ" serve --socket "$SCRUB_SOCK" --workers 1 --queue-depth 16 \
    >"$SCRUB_DIR/serve.log" 2>&1 &
SCRUB_PID=$!
for _ in $(seq 1 100); do [ -S "$SCRUB_SOCK" ] && break; sleep 0.1; done
[ -S "$SCRUB_SOCK" ] || { echo "FAIL: scrub server never bound $SCRUB_SOCK"; cat "$SCRUB_DIR/serve.log"; exit 1; }
SCRUB_ART0="$(HQ_RESULTS="$SCRUB_DIR" "$HQ" submit --socket "$SCRUB_SOCK" -w gaussian+needle --streams 4 --seed 300 | sed -n 's/^artifact: //p')"
SCRUB_ART1="$(HQ_RESULTS="$SCRUB_DIR" "$HQ" submit --socket "$SCRUB_SOCK" -w gaussian+needle --streams 4 --seed 301 | sed -n 's/^artifact: //p')"
[ -s "$SCRUB_ART0" ] && [ -s "$SCRUB_ART1" ] \
    || { echo "FAIL: scrub-gate submits produced no artifacts"; cat "$SCRUB_DIR/serve.log"; exit 1; }
HQ_RESULTS="$SCRUB_DIR" "$HQ" submit --socket "$SCRUB_SOCK" --shutdown >/dev/null
wait "$SCRUB_PID" 2>/dev/null || true
SCRUB_PID=""

HQ_RESULTS="$SCRUB_DIR" "$HQ" scrub >/dev/null \
    || { echo "FAIL: pristine store does not scrub clean"; exit 1; }
SCRUB_CACHE="$(ls "$SCRUB_DIR"/.scenario-cache/*.v2 | head -1)"
[ -s "$SCRUB_CACHE" ] || { echo "FAIL: no scenario-cache entry to corrupt"; exit 1; }
flip_byte "$SCRUB_ART0" 7
flip_byte "$SCRUB_CACHE" 40
RC=0; HQ_RESULTS="$SCRUB_DIR" "$HQ" scrub >/dev/null 2>&1 || RC=$?
[ "$RC" = 1 ] || { echo "FAIL: verify-only scrub must exit 1 on a damaged store (got $RC)"; exit 1; }
HQ_RESULTS="$SCRUB_DIR" "$HQ" scrub --repair \
    || { echo "FAIL: scrub --repair left unresolved damage"; exit 1; }
# Self-healing contract: after one repair pass, a verify-only scrub
# finds nothing — and the regenerated artifact is byte-identical to a
# direct rendering of the journaled spec.
HQ_RESULTS="$SCRUB_DIR" "$HQ" scrub >/dev/null \
    || { echo "FAIL: store still damaged after scrub --repair"; exit 1; }
for s in 300 301; do
    HQ_RESULTS="$SCRUB_DIR" "$HQ" submit --direct -w gaussian+needle --streams 4 --seed "$s" >"$SCRUB_DIR/direct.tmp"
    art="$SCRUB_ART0"; [ "$s" = 301 ] && art="$SCRUB_ART1"
    cmp "$art" "$SCRUB_DIR/direct.tmp" \
        || { echo "FAIL: repaired artifact for seed $s diverges from direct run"; exit 1; }
done
echo "scrub gate: corruption detected, repaired by re-execution, second scrub clean"

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint (rustup component add clippy)"
fi

echo "==> ci.sh: all checks passed"
