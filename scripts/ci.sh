#!/usr/bin/env bash
# Local CI gate: run this before sending a PR.
#
#   scripts/ci.sh            # release build + full test suite + clippy
#
# Mirrors what the tier-1 check runs (build + test at the workspace
# root), then adds the slower stages:
#   1. release-mode `--include-ignored` tests — the experiment smoke
#      tests and the suite determinism tests are `#[ignore]`d because
#      they take minutes in debug builds; they run here in release,
#   2. the perf-regression gate: `perf_baseline --check` re-times the
#      event-queue patterns, the end-to-end sim, the label-heavy
#      interner stress and the suite cold/warm scenario-cache pass,
#      failing on a >20% events/sec drop against the committed
#      BENCH_PR4.json or a miss of the absolute floors (sim ≥1.5x over
#      the PR 2 baseline, suite warm-cache speedup ≥1.3x),
#   3. a scenario-cache correctness smoke: the quick suite runs twice
#      into one results directory; the second run must serve ≥90% of
#      its simulations from the cache and reproduce every artifact
#      byte-for-byte,
#   4. a fixed-seed chaos soak: 200 random audited cases (random device
#      geometry x workload mix x fault plan) must all run with zero
#      invariant-auditor and validate() violations; a failure shrinks
#      to a JSON repro under results/ replayable with `hyperq repro`,
#   5. clippy with warnings denied (skipped with a notice when the
#      component is not installed, e.g. minimal toolchains).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --release -q -- --include-ignored"
cargo test --workspace --release -q -- --include-ignored

echo "==> perf_baseline --check BENCH_PR4.json"
cargo run --release -q -p hq-bench --bin perf_baseline -- --check BENCH_PR4.json

echo "==> scenario-cache correctness smoke (quick suite twice)"
SMOKE_RESULTS="$(mktemp -d)"
SMOKE_SNAP="$(mktemp -d)"
SMOKE_LOG="$(mktemp)"
trap 'rm -rf "$SMOKE_RESULTS" "$SMOKE_SNAP" "$SMOKE_LOG"' EXIT
HQ_RESULTS="$SMOKE_RESULTS" cargo run --release -q -p hq-bench --bin all_experiments -- --quick >/dev/null
cp "$SMOKE_RESULTS"/*.md "$SMOKE_RESULTS"/*.csv "$SMOKE_SNAP"/
HQ_RESULTS="$SMOKE_RESULTS" cargo run --release -q -p hq-bench --bin all_experiments -- --quick >/dev/null 2>"$SMOKE_LOG"
# The warm run must be served almost entirely from the scenario cache
# (the counters land on stderr as "scenario cache: H hits, M misses").
awk '/^scenario cache:/ {
    h = $3 + 0; m = $5 + 0;
    printf "warm run: %d hits, %d misses\n", h, m;
    if (h + m == 0 || h < 0.9 * (h + m)) { print "FAIL: warm-run cache hit rate below 90%"; exit 1 }
    found = 1
}
END { if (!found) { print "FAIL: no scenario-cache counter line in warm-run stderr"; exit 1 } }' "$SMOKE_LOG"
for f in "$SMOKE_SNAP"/*; do
    cmp "$f" "$SMOKE_RESULTS/$(basename "$f")" \
        || { echo "FAIL: artifact $(basename "$f") differs between cold and warm-cache runs"; exit 1; }
done
echo "warm-cache rerun reproduced every artifact byte-for-byte"

echo "==> chaos soak (200 cases, seed 7)"
cargo run --release -q -p hq-bench --bin chaos -- --cases 200 --seed 7

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint (rustup component add clippy)"
fi

echo "==> ci.sh: all checks passed"
