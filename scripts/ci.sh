#!/usr/bin/env bash
# Local CI gate: run this before sending a PR.
#
#   scripts/ci.sh            # release build + full test suite + clippy
#
# Mirrors what the tier-1 check runs (build + test at the workspace
# root), then adds three slower stages:
#   1. release-mode `--include-ignored` tests — the experiment smoke
#      tests and the suite determinism test are `#[ignore]`d because
#      they take minutes in debug builds; they run here in release,
#   2. the perf-regression gate: `perf_baseline --check` re-times the
#      event-queue patterns and the end-to-end sim and fails on a >20%
#      events/sec drop against the committed BENCH_PR2.json,
#   3. a fixed-seed chaos soak: 200 random audited cases (random device
#      geometry x workload mix x fault plan) must all run with zero
#      invariant-auditor and validate() violations; a failure shrinks
#      to a JSON repro under results/ replayable with `hyperq repro`,
#   4. clippy with warnings denied (skipped with a notice when the
#      component is not installed, e.g. minimal toolchains).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace --release -q -- --include-ignored"
cargo test --workspace --release -q -- --include-ignored

echo "==> perf_baseline --check BENCH_PR2.json"
cargo run --release -q -p hq-bench --bin perf_baseline -- --check BENCH_PR2.json

echo "==> chaos soak (200 cases, seed 7)"
cargo run --release -q -p hq-bench --bin chaos -- --cases 200 --seed 7

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint (rustup component add clippy)"
fi

echo "==> ci.sh: all checks passed"
